#include "core/leakage_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;

DesignCharacteristics test_design(std::size_t n = 2500) {
  DesignCharacteristics d;
  d.usage.alphas.assign(mini_library().size(), 0.0);
  d.usage.alphas[mini_library().index_of("INV_X1")] = 0.5;
  d.usage.alphas[mini_library().index_of("NAND2_X1")] = 0.5;
  d.gate_count = n;
  d.width_nm = 7.5e4;
  d.height_nm = 7.5e4;
  return d;
}

TEST(FloorplanForDesign, TilesLayoutDimensions) {
  const DesignCharacteristics d = test_design(2500);
  const placement::Floorplan fp = floorplan_for_design(d);
  EXPECT_GE(fp.num_sites(), d.gate_count);
  EXPECT_NEAR(fp.width_nm(), d.width_nm, 1e-6 * d.width_nm);
  EXPECT_NEAR(fp.height_nm(), d.height_nm, 1e-6 * d.height_nm);
  EXPECT_EQ(fp.rows, 50u);
  EXPECT_EQ(fp.cols, 50u);
}

TEST(FloorplanForDesign, RespectsAspectRatio) {
  DesignCharacteristics d = test_design(5000);
  d.width_nm = 2.0e5;
  d.height_nm = 0.5e5;  // 4:1 aspect
  const placement::Floorplan fp = floorplan_for_design(d);
  const double aspect =
      static_cast<double>(fp.cols) / static_cast<double>(fp.rows);
  EXPECT_GT(aspect, 2.5);
  EXPECT_LT(aspect, 6.0);
}

TEST(FloorplanForDesign, ContractChecks) {
  DesignCharacteristics d = test_design();
  d.gate_count = 0;
  EXPECT_THROW(floorplan_for_design(d), ContractViolation);
  d = test_design();
  d.width_nm = 0.0;
  EXPECT_THROW(floorplan_for_design(d), ContractViolation);
}

TEST(LeakageEstimator, MethodsAgreeOnMediumDesign) {
  EstimatorConfig cfg;
  cfg.maximize_signal_probability = false;
  cfg.apply_vt_mean_factor = false;
  const DesignCharacteristics d = test_design(2500);

  cfg.method = EstimationMethod::kLinear;
  const LeakageEstimate lin = LeakageEstimator(mini_chars_analytic(), cfg).estimate(d);
  cfg.method = EstimationMethod::kIntegralRect;
  const LeakageEstimate rect = LeakageEstimator(mini_chars_analytic(), cfg).estimate(d);
  cfg.method = EstimationMethod::kIntegralPolar;
  const LeakageEstimate polar = LeakageEstimator(mini_chars_analytic(), cfg).estimate(d);

  EXPECT_NEAR(rect.sigma_na, lin.sigma_na, 0.01 * lin.sigma_na);
  EXPECT_NEAR(polar.sigma_na, lin.sigma_na, 0.01 * lin.sigma_na);
  EXPECT_DOUBLE_EQ(rect.mean_na, lin.mean_na);
}

TEST(LeakageEstimator, VtFactorScalesMeanOnly) {
  EstimatorConfig cfg;
  cfg.maximize_signal_probability = false;
  cfg.method = EstimationMethod::kLinear;
  cfg.apply_vt_mean_factor = false;
  const LeakageEstimate base =
      LeakageEstimator(mini_chars_analytic(), cfg).estimate(test_design());
  cfg.apply_vt_mean_factor = true;
  const LeakageEstimate with_vt =
      LeakageEstimator(mini_chars_analytic(), cfg).estimate(test_design());
  const double factor = vt_mean_factor(mini_chars_analytic().process().vt(),
                                       mini_chars_analytic().library().tech());
  EXPECT_GT(factor, 1.0);
  EXPECT_NEAR(with_vt.mean_na, base.mean_na * factor, 1e-9 * with_vt.mean_na);
  EXPECT_DOUBLE_EQ(with_vt.sigma_na, base.sigma_na);
}

TEST(LeakageEstimator, MaximizePolicyIsConservative) {
  EstimatorConfig fixed;
  fixed.maximize_signal_probability = false;
  fixed.signal_probability = 0.5;
  fixed.method = EstimationMethod::kLinear;
  EstimatorConfig maxed = fixed;
  maxed.maximize_signal_probability = true;
  const LeakageEstimate at_half =
      LeakageEstimator(mini_chars_analytic(), fixed).estimate(test_design());
  const LeakageEstimate at_max =
      LeakageEstimator(mini_chars_analytic(), maxed).estimate(test_design());
  EXPECT_GE(at_max.mean_na, at_half.mean_na * 0.999);
}

TEST(LeakageEstimator, AutoMethodSelectsBySize) {
  EstimatorConfig cfg;
  cfg.maximize_signal_probability = false;
  cfg.method = EstimationMethod::kAuto;
  const LeakageEstimator est(mini_chars_analytic(), cfg);
  // Small design: linear; large: polar. Both must run and be consistent.
  const LeakageEstimate small = est.estimate(test_design(400));
  DesignCharacteristics big = test_design(250000);
  big.width_nm = 7.5e5;
  big.height_nm = 7.5e5;
  const LeakageEstimate large = est.estimate(big);
  EXPECT_GT(small.mean_na, 0.0);
  EXPECT_GT(large.mean_na, small.mean_na);
}

TEST(LeakageEstimator, ScalesLinearlnMeanWithGateCount) {
  EstimatorConfig cfg;
  cfg.maximize_signal_probability = false;
  cfg.method = EstimationMethod::kLinear;
  const LeakageEstimator est(mini_chars_analytic(), cfg);
  const LeakageEstimate e1 = est.estimate(test_design(900));
  DesignCharacteristics d2 = test_design(3600);
  d2.width_nm *= 2.0;
  d2.height_nm *= 2.0;
  const LeakageEstimate e2 = est.estimate(d2);
  EXPECT_NEAR(e2.mean_na / e1.mean_na, 4.0, 0.01);
  // Relative sigma shrinks with size (averaging), but absolute sigma grows.
  EXPECT_GT(e2.sigma_na, e1.sigma_na);
  EXPECT_LT(e2.cv(), e1.cv());
}

TEST(LeakageEstimator, ResolveSignalProbability) {
  EstimatorConfig cfg;
  cfg.maximize_signal_probability = false;
  cfg.signal_probability = 0.37;
  const LeakageEstimator est(mini_chars_analytic(), cfg);
  EXPECT_DOUBLE_EQ(est.resolve_signal_probability(test_design().usage), 0.37);
  EXPECT_THROW(LeakageEstimator(mini_chars_analytic(), [] {
                 EstimatorConfig c;
                 c.signal_probability = 1.5;
                 return c;
               }()),
               ContractViolation);
}

TEST(LeakageEstimate, HelperAccessors) {
  LeakageEstimate e;
  e.mean_na = 200.0;
  e.sigma_na = 50.0;
  EXPECT_DOUBLE_EQ(e.variance_na2(), 2500.0);
  EXPECT_DOUBLE_EQ(e.cv(), 0.25);
}

}  // namespace
}  // namespace rgleak::core
