#include "core/floorplan_optimizer.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;

netlist::UsageHistogram usage_of(const char* name) {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of(name)] = 1.0;
  return u;
}

BlockSpec block(const std::string& name, netlist::UsageHistogram usage, std::size_t c0,
                std::size_t r0, std::size_t side) {
  BlockSpec b;
  b.name = name;
  b.usage = std::move(usage);
  b.col0 = c0;
  b.row0 = r0;
  b.cols = side;
  b.rows = side;
  return b;
}

// A worst-case start: the two highest-sigma (NOR-heavy) blocks adjacent in
// one corner, two quiet (NAND3-stacked) blocks in the other.
MultiBlockEstimator adversarial_layout() {
  placement::Floorplan fp;
  fp.rows = 8;
  fp.cols = 32;
  fp.site_w_nm = fp.site_h_nm = 4000.0;
  return MultiBlockEstimator(mini_chars_analytic(), fp,
                             {block("hot_a", usage_of("NOR2_X1"), 0, 0, 8),
                              block("hot_b", usage_of("NOR2_X1"), 8, 0, 8),
                              block("cool_a", usage_of("NAND3_X1"), 16, 0, 8),
                              block("cool_b", usage_of("NAND3_X1"), 24, 0, 8)});
}

TEST(FloorplanOptimizer, ReducesOrKeepsSigma) {
  MultiBlockEstimator mb = adversarial_layout();
  FloorplanOptimizerOptions opts;
  opts.iterations = 200;
  const FloorplanOptimizerResult r = optimize_floorplan(mb, opts);
  EXPECT_LE(r.final_sigma_na, r.initial_sigma_na * (1.0 + 1e-12));
  // Separating the hot blocks must strictly help here.
  EXPECT_LT(r.final_sigma_na, r.initial_sigma_na);
  // The estimator reflects the restored best layout.
  EXPECT_NEAR(mb.chip_estimate().sigma_na, r.final_sigma_na, 1e-9 * r.final_sigma_na);
}

TEST(FloorplanOptimizer, ReachesExhaustiveOptimum) {
  // Four equal blocks on four slots: enumerate all distinct hot-pair
  // placements and check the annealer lands on the global optimum.
  const std::vector<std::size_t> slots = {0, 8, 16, 24};
  double best_exhaustive = 1e300;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      std::vector<std::size_t> cool;
      for (std::size_t s = 0; s < 4; ++s)
        if (s != i && s != j) cool.push_back(s);
      placement::Floorplan fp;
      fp.rows = 8;
      fp.cols = 32;
      fp.site_w_nm = fp.site_h_nm = 4000.0;
      MultiBlockEstimator mb(
          mini_chars_analytic(), fp,
          {block("hot_a", usage_of("NOR2_X1"), slots[i], 0, 8),
           block("hot_b", usage_of("NOR2_X1"), slots[j], 0, 8),
           block("cool_a", usage_of("NAND3_X1"), slots[cool[0]], 0, 8),
           block("cool_b", usage_of("NAND3_X1"), slots[cool[1]], 0, 8)});
      best_exhaustive = std::min(best_exhaustive, mb.chip_estimate().sigma_na);
    }
  }

  MultiBlockEstimator mb = adversarial_layout();
  FloorplanOptimizerOptions opts;
  opts.iterations = 400;
  const FloorplanOptimizerResult r = optimize_floorplan(mb, opts);
  EXPECT_NEAR(r.final_sigma_na, best_exhaustive, 1e-6 * best_exhaustive);
}

TEST(FloorplanOptimizer, DeterministicForSeed) {
  MultiBlockEstimator a = adversarial_layout();
  MultiBlockEstimator b = adversarial_layout();
  FloorplanOptimizerOptions opts;
  opts.iterations = 150;
  opts.seed = 7;
  const auto ra = optimize_floorplan(a, opts);
  const auto rb = optimize_floorplan(b, opts);
  EXPECT_DOUBLE_EQ(ra.final_sigma_na, rb.final_sigma_na);
  EXPECT_EQ(ra.positions, rb.positions);
}

TEST(FloorplanOptimizer, MeanIsPlacementInvariant) {
  MultiBlockEstimator mb = adversarial_layout();
  const double mean_before = mb.chip_estimate().mean_na;
  FloorplanOptimizerOptions opts;
  opts.iterations = 100;
  optimize_floorplan(mb, opts);
  EXPECT_NEAR(mb.chip_estimate().mean_na, mean_before, 1e-9 * mean_before);
}

TEST(FloorplanOptimizer, ContractChecks) {
  // No equal-extent pair -> reject.
  placement::Floorplan fp;
  fp.rows = 8;
  fp.cols = 12;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  MultiBlockEstimator mb(mini_chars_analytic(), fp,
                         {block("a", usage_of("INV_X1"), 0, 0, 4),
                          [&] {
                            BlockSpec b = block("b", usage_of("INV_X1"), 4, 0, 4);
                            b.cols = 8;  // different extent
                            return b;
                          }()});
  EXPECT_THROW(optimize_floorplan(mb), ContractViolation);

  MultiBlockEstimator ok = adversarial_layout();
  FloorplanOptimizerOptions bad;
  bad.iterations = 0;
  EXPECT_THROW(optimize_floorplan(ok, bad), ContractViolation);
}

TEST(MultiBlockMoves, SetAndSwapValidation) {
  MultiBlockEstimator mb = adversarial_layout();
  // Out of bounds.
  EXPECT_THROW(mb.set_block_position(0, 30, 0), ContractViolation);
  // Overlap.
  EXPECT_THROW(mb.set_block_position(0, 9, 0), ContractViolation);
  // Valid move within the die (block 0 from (0,0) to same place is fine).
  EXPECT_NO_THROW(mb.set_block_position(0, 0, 0));
  // Swap requires equal extents (all equal here) and valid indices.
  EXPECT_THROW(mb.swap_block_positions(0, 9), ContractViolation);
  EXPECT_NO_THROW(mb.swap_block_positions(0, 3));
}

}  // namespace
}  // namespace rgleak::core
