#include "core/sensitivity.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "util/require.h"

namespace rgleak::core {
namespace {

using rgleak::testing::mini_library;
using rgleak::testing::test_process;

netlist::UsageHistogram usage() {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[mini_library().index_of("INV_X1")] = 0.5;
  u.alphas[mini_library().index_of("NAND2_X1")] = 0.5;
  return u;
}

TEST(Sensitivity, ReportsAllFourKnobs) {
  const auto entries =
      process_sensitivities(mini_library(), test_process(), usage(), 400);
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].parameter, "mean_l");
  EXPECT_EQ(entries[3].parameter, "corr_length");
  for (const auto& e : entries) EXPECT_GT(e.base_value, 0.0);
}

TEST(Sensitivity, SignsArePhysical) {
  const auto entries =
      process_sensitivities(mini_library(), test_process(), usage(), 400);
  // Longer channels -> exponentially less leakage: strongly negative mean
  // elasticity.
  EXPECT_LT(entries[0].mean_elasticity, -2.0);
  // More D2D spread -> more chip sigma; negligible mean effect by
  // comparison.
  EXPECT_GT(entries[1].sigma_elasticity, 0.1);
  // Longer correlation length -> less spatial averaging -> more sigma, no
  // mean effect.
  EXPECT_GT(entries[3].sigma_elasticity, 0.0);
  EXPECT_NEAR(entries[3].mean_elasticity, 0.0, 1e-6);
}

TEST(Sensitivity, SigmaKnobsDominateSigmaNotMean) {
  const auto entries =
      process_sensitivities(mini_library(), test_process(), usage(), 400);
  // sigma_d2d/sigma_wid move sigma much more than the mean.
  for (std::size_t i : {1u, 2u}) {
    EXPECT_GT(std::abs(entries[i].sigma_elasticity),
              5.0 * std::abs(entries[i].mean_elasticity))
        << entries[i].parameter;
  }
}

TEST(Sensitivity, SkipsZeroValuedKnobs) {
  process::LengthVariation len;
  len.mean_nm = 40.0;
  len.sigma_d2d_nm = 0.0;  // pure WID
  len.sigma_wid_nm = 1.7678;
  const process::ProcessVariation p(
      len, process::VtVariation{}, std::make_shared<process::ExponentialCorrelation>(2.0e4));
  const auto entries = process_sensitivities(mini_library(), p, usage(), 400);
  ASSERT_EQ(entries.size(), 3u);  // sigma_d2d dropped
  for (const auto& e : entries) EXPECT_NE(e.parameter, "sigma_d2d");
}

TEST(Sensitivity, ContractChecks) {
  SensitivityOptions opts;
  opts.step = 0.0;
  EXPECT_THROW(process_sensitivities(mini_library(), test_process(), usage(), 100, 1500.0, opts),
               ContractViolation);
}

}  // namespace
}  // namespace rgleak::core
