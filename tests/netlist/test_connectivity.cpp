#include "netlist/connectivity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "util/require.h"

namespace rgleak::netlist {
namespace {

using rgleak::testing::mini_library;

ConnectedGate gate(const char* cell, std::vector<std::size_t> inputs) {
  ConnectedGate g;
  g.cell_index = mini_library().index_of(cell);
  g.input_nets = std::move(inputs);
  return g;
}

TEST(CellLogic, OutputValuesForBasicGates) {
  const auto& lib = mini_library();
  const auto& inv = lib.cell(lib.index_of("INV_X1"));
  EXPECT_TRUE(inv.output_value(0));
  EXPECT_FALSE(inv.output_value(1));
  const auto& nand = lib.cell(lib.index_of("NAND2_X1"));
  EXPECT_TRUE(nand.output_value(0));
  EXPECT_FALSE(nand.output_value(3));
  const auto& nor = lib.cell(lib.index_of("NOR2_X1"));
  EXPECT_TRUE(nor.output_value(0));
  EXPECT_FALSE(nor.output_value(1));
}

TEST(CellLogic, OutputProbabilityExact) {
  const auto& lib = mini_library();
  const auto& inv = lib.cell(lib.index_of("INV_X1"));
  EXPECT_NEAR(inv.output_probability({0.3}), 0.7, 1e-12);
  const auto& nand = lib.cell(lib.index_of("NAND2_X1"));
  // P(out=1) = 1 - pa*pb.
  EXPECT_NEAR(nand.output_probability({0.3, 0.8}), 1.0 - 0.24, 1e-12);
  const auto& nor = lib.cell(lib.index_of("NOR2_X1"));
  EXPECT_NEAR(nor.output_probability({0.3, 0.8}), 0.7 * 0.2, 1e-12);
  EXPECT_THROW(inv.output_probability({0.3, 0.4}), ContractViolation);
  EXPECT_THROW(inv.output_probability({1.5}), ContractViolation);
}

TEST(CellLogic, MultiStageCellsUseDeclaredOutput) {
  const auto& lib = rgleak::testing::full_library();
  const auto& and2 = lib.cell(lib.index_of("AND2_X1"));
  EXPECT_NEAR(and2.output_probability({0.5, 0.5}), 0.25, 1e-12);
  const auto& xor2 = lib.cell(lib.index_of("XOR2_X1"));
  EXPECT_NEAR(xor2.output_probability({0.3, 0.3}), 2 * 0.3 * 0.7, 1e-12);
  // DFF primary output is Q = D (in the stable characterization state).
  const auto& dff = lib.cell(lib.index_of("DFF_X1"));
  EXPECT_TRUE(dff.output_value(1));   // d=1
  EXPECT_FALSE(dff.output_value(2));  // d=0, clk=1
}

TEST(ConnectedNetlist, ValidConstructionAndAccess) {
  const std::vector<ConnectedGate> gates = {
      gate("INV_X1", {0}),          // net 2 = !pi0
      gate("NAND2_X1", {1, 2}),     // net 3
      gate("NOR2_X1", {2, 3}),      // net 4
  };
  const ConnectedNetlist nl("t", &mini_library(), 2, gates);
  EXPECT_EQ(nl.size(), 3u);
  EXPECT_EQ(nl.num_nets(), 5u);
  EXPECT_EQ(nl.output_net(0), 2u);
  const Netlist flat = nl.flatten();
  EXPECT_EQ(flat.size(), 3u);
  EXPECT_EQ(flat.gate(1).cell_index, mini_library().index_of("NAND2_X1"));
}

TEST(ConnectedNetlist, RejectsNonDagAndBadArity) {
  // Forward reference.
  EXPECT_THROW(ConnectedNetlist("t", &mini_library(), 1, {gate("INV_X1", {1})}),
               ContractViolation);
  // Wrong input count.
  EXPECT_THROW(ConnectedNetlist("t", &mini_library(), 1, {gate("NAND2_X1", {0})}),
               ContractViolation);
  EXPECT_THROW(ConnectedNetlist("t", &mini_library(), 0, {gate("INV_X1", {0})}),
               ContractViolation);
}

TEST(Propagation, InverterChainAlternates) {
  std::vector<ConnectedGate> gates;
  for (std::size_t g = 0; g < 4; ++g) gates.push_back(gate("INV_X1", {g}));
  const ConnectedNetlist nl("chain", &mini_library(), 1, gates);
  const auto probs = propagate_probabilities(nl, 0.2);
  EXPECT_NEAR(probs[0], 0.2, 1e-12);
  EXPECT_NEAR(probs[1], 0.8, 1e-12);
  EXPECT_NEAR(probs[2], 0.2, 1e-12);
  EXPECT_NEAR(probs[3], 0.8, 1e-12);
  EXPECT_NEAR(probs[4], 0.2, 1e-12);
}

TEST(Propagation, NandChainConvergesToFixedPoint) {
  // NAND2 with one input from the chain and one fresh primary input at 0.5:
  // f(p) = 1 - 0.5 p, a contraction with fixed point 2/3.
  std::vector<ConnectedGate> gates;
  std::size_t prev = 0;
  for (std::size_t g = 0; g < 30; ++g) {
    gates.push_back(gate("NAND2_X1", {prev, 0}));
    prev = 1 + g;
  }
  const ConnectedNetlist nl("nands", &mini_library(), 1, gates);
  const auto probs = propagate_probabilities(nl, 0.5);
  EXPECT_NEAR(probs.back(), 2.0 / 3.0, 1e-6);
}

TEST(Propagation, NandSelfCoupledChainHitsTwoCycle) {
  // With both inputs tied to the previous stage, f(p) = 1 - p^2 whose fixed
  // point is repelling: the iterates fall into the {0, 1} two-cycle — a nice
  // sanity check that propagation follows the exact gate function.
  std::vector<ConnectedGate> gates;
  std::size_t prev = 0;
  for (std::size_t g = 0; g < 30; ++g) {
    gates.push_back(gate("NAND2_X1", {prev, prev}));
    prev = 1 + g;
  }
  const ConnectedNetlist nl("nands", &mini_library(), 1, gates);
  const auto probs = propagate_probabilities(nl, 0.5);
  EXPECT_LT(probs[probs.size() - 1] * (1.0 - probs[probs.size() - 1]), 1e-3);
  EXPECT_NEAR(probs[probs.size() - 1] + probs[probs.size() - 2], 1.0, 1e-3);
}

TEST(Propagation, HalfProbabilityMayDriftFromHalf) {
  // The global-p = 0.5 assumption is not a fixed point for NOR2.
  std::vector<ConnectedGate> gates = {gate("NOR2_X1", {0, 1})};
  const ConnectedNetlist nl("nor", &mini_library(), 2, gates);
  const auto probs = propagate_probabilities(nl, 0.5);
  EXPECT_NEAR(probs[2], 0.25, 1e-12);
}

TEST(Propagation, GateInputProbabilities) {
  std::vector<ConnectedGate> gates = {gate("INV_X1", {0}), gate("NAND2_X1", {0, 1})};
  const ConnectedNetlist nl("t", &mini_library(), 1, gates);
  const auto probs = propagate_probabilities(nl, 0.3);
  const auto inputs = gate_input_probabilities(nl, probs);
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_NEAR(inputs[1][0], 0.3, 1e-12);
  EXPECT_NEAR(inputs[1][1], 0.7, 1e-12);
  EXPECT_THROW(gate_input_probabilities(nl, std::vector<double>(2)), ContractViolation);
}

TEST(RandomDag, StructurallyValidAndMatchesHistogram) {
  UsageHistogram usage;
  usage.alphas.assign(mini_library().size(), 0.0);
  usage.alphas[mini_library().index_of("INV_X1")] = 0.4;
  usage.alphas[mini_library().index_of("NAND2_X1")] = 0.6;
  math::Rng rng(7);
  const ConnectedNetlist nl = generate_random_dag(mini_library(), usage, 500, 16, rng);
  EXPECT_EQ(nl.size(), 500u);
  // Construction validated DAG-ness; check the histogram.
  const UsageHistogram got = extract_usage(nl.flatten());
  EXPECT_NEAR(got.alphas[mini_library().index_of("INV_X1")], 0.4, 0.01);
  // Propagation must produce valid probabilities everywhere.
  const auto probs = propagate_probabilities(nl, 0.5);
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomDag, SeedDeterminism) {
  UsageHistogram usage;
  usage.alphas.assign(mini_library().size(), 0.0);
  usage.alphas[0] = 1.0;
  math::Rng r1(9), r2(9);
  const ConnectedNetlist a = generate_random_dag(mini_library(), usage, 50, 4, r1);
  const ConnectedNetlist b = generate_random_dag(mini_library(), usage, 50, 4, r2);
  for (std::size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(a.gate(g).cell_index, b.gate(g).cell_index);
    EXPECT_EQ(a.gate(g).input_nets, b.gate(g).input_nets);
  }
}

}  // namespace
}  // namespace rgleak::netlist
