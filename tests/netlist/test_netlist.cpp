#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "netlist/iscas85.h"
#include "netlist/random_circuit.h"
#include "util/require.h"

namespace rgleak::netlist {
namespace {

using rgleak::testing::mini_library;

TEST(Netlist, ConstructionAndAccess) {
  const Netlist nl("t", &mini_library(), {{0}, {1}, {0}});
  EXPECT_EQ(nl.size(), 3u);
  EXPECT_EQ(nl.gate(1).cell_index, 1u);
  EXPECT_THROW(nl.gate(3), ContractViolation);
}

TEST(Netlist, RejectsBadConstruction) {
  EXPECT_THROW(Netlist("t", nullptr, {{0}}), ContractViolation);
  EXPECT_THROW(Netlist("t", &mini_library(), {}), ContractViolation);
  EXPECT_THROW(Netlist("t", &mini_library(), {{99}}), ContractViolation);
}

TEST(UsageHistogram, ExtractMatchesCounts) {
  const Netlist nl("t", &mini_library(), {{0}, {0}, {0}, {1}});
  const UsageHistogram h = extract_usage(nl);
  EXPECT_NEAR(h.alphas[0], 0.75, 1e-12);
  EXPECT_NEAR(h.alphas[1], 0.25, 1e-12);
  h.validate();
}

TEST(UsageHistogram, FromCounts) {
  const UsageHistogram h =
      usage_from_counts(mini_library(), {{"INV_X1", 30}, {"NAND2_X1", 70}});
  EXPECT_NEAR(h.alphas[mini_library().index_of("INV_X1")], 0.3, 1e-12);
  EXPECT_NEAR(h.alphas[mini_library().index_of("NAND2_X1")], 0.7, 1e-12);
  EXPECT_THROW(usage_from_counts(mini_library(), {{"NOPE", 1}}), ContractViolation);
  EXPECT_THROW(usage_from_counts(mini_library(), {}), ContractViolation);
}

TEST(UsageHistogram, ValidationErrors) {
  UsageHistogram h;
  EXPECT_THROW(h.validate(), ContractViolation);
  h.alphas = {0.5, 0.4};
  EXPECT_THROW(h.validate(), ContractViolation);
  h.alphas = {-0.1, 1.1};
  EXPECT_THROW(h.validate(), ContractViolation);
}

TEST(RandomCircuit, ExactMatchReproducesHistogram) {
  UsageHistogram target;
  target.alphas.assign(mini_library().size(), 0.0);
  target.alphas[0] = 0.5;
  target.alphas[1] = 0.3;
  target.alphas[2] = 0.2;
  math::Rng rng(1);
  const Netlist nl = generate_random_circuit(mini_library(), target, 1000, rng);
  const UsageHistogram got = extract_usage(nl);
  for (std::size_t i = 0; i < got.alphas.size(); ++i)
    EXPECT_NEAR(got.alphas[i], target.alphas[i], 1.0 / 1000.0);
}

TEST(RandomCircuit, ExactMatchHandlesRoundingRemainder) {
  UsageHistogram target;
  target.alphas.assign(mini_library().size(), 0.0);
  target.alphas[0] = 1.0 / 3.0;
  target.alphas[1] = 1.0 / 3.0;
  target.alphas[2] = 1.0 / 3.0;
  math::Rng rng(2);
  const Netlist nl = generate_random_circuit(mini_library(), target, 100, rng);
  EXPECT_EQ(nl.size(), 100u);
}

TEST(RandomCircuit, IidConvergesToHistogram) {
  UsageHistogram target;
  target.alphas.assign(mini_library().size(), 0.0);
  target.alphas[0] = 0.7;
  target.alphas[3] = 0.3;
  math::Rng rng(3);
  const Netlist nl =
      generate_random_circuit(mini_library(), target, 20000, rng, UsageMatch::kIid);
  const UsageHistogram got = extract_usage(nl);
  EXPECT_NEAR(got.alphas[0], 0.7, 0.02);
  EXPECT_NEAR(got.alphas[3], 0.3, 0.02);
  EXPECT_DOUBLE_EQ(got.alphas[1], 0.0);
}

TEST(RandomCircuit, ShufflesTypesAcrossPositions) {
  UsageHistogram target;
  target.alphas.assign(mini_library().size(), 0.0);
  target.alphas[0] = 0.5;
  target.alphas[1] = 0.5;
  math::Rng rng(4);
  const Netlist nl = generate_random_circuit(mini_library(), target, 1000, rng);
  // First half should not be all type 0 (probability ~ 0 under shuffling).
  std::size_t type0_in_front = 0;
  for (std::size_t i = 0; i < 500; ++i)
    if (nl.gate(i).cell_index == 0) ++type0_in_front;
  EXPECT_GT(type0_in_front, 150u);
  EXPECT_LT(type0_in_front, 350u);
}

TEST(RandomCircuit, SeedDeterminism) {
  UsageHistogram target;
  target.alphas.assign(mini_library().size(), 0.0);
  target.alphas[0] = 0.5;
  target.alphas[1] = 0.5;
  math::Rng r1(7), r2(7);
  const Netlist a = generate_random_circuit(mini_library(), target, 300, r1);
  const Netlist b = generate_random_circuit(mini_library(), target, 300, r2);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.gate(i).cell_index, b.gate(i).cell_index);
}

TEST(Iscas85, DescriptorsMatchPublishedTotals) {
  const auto& circuits = iscas85_descriptors();
  ASSERT_EQ(circuits.size(), 9u);
  // Published gate counts (see iscas85.cpp header note).
  const std::vector<std::pair<std::string, std::size_t>> expected = {
      {"c432", 160},  {"c499", 202},  {"c880", 383},  {"c1355", 546},  {"c1908", 880},
      {"c2670", 1193}, {"c5315", 2307}, {"c6288", 2416}, {"c7552", 3512}};
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    EXPECT_EQ(circuits[i].name, expected[i].first);
    EXPECT_EQ(circuits[i].total_gates(), expected[i].second) << circuits[i].name;
  }
}

TEST(Iscas85, InstantiatesOverFullLibrary) {
  const auto& lib = rgleak::testing::full_library();
  math::Rng rng(5);
  const Netlist nl = make_iscas85(iscas85_descriptors().front(), lib, rng);
  EXPECT_EQ(nl.size(), 160u);
  EXPECT_EQ(nl.name(), "c432");
  const UsageHistogram h = extract_usage(nl);
  h.validate();
  EXPECT_GT(h.alphas[lib.index_of("XOR2_X1")], 0.1);  // c432 is XOR-rich
}

}  // namespace
}  // namespace rgleak::netlist
