#include "netlist/iscas89.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace rgleak::netlist {
namespace {

TEST(Iscas89, DescriptorsMatchPublishedTotals) {
  const auto& circuits = iscas89_descriptors();
  ASSERT_EQ(circuits.size(), 8u);
  const std::vector<std::pair<std::string, std::size_t>> expected = {
      {"s298", 133},   {"s344", 175},    {"s641", 398},    {"s1196", 547},
      {"s5378", 2958}, {"s9234", 5808},  {"s13207", 8589}, {"s38417", 24179}};
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    EXPECT_EQ(circuits[i].name, expected[i].first);
    EXPECT_EQ(circuits[i].total_gates(), expected[i].second) << circuits[i].name;
  }
}

TEST(Iscas89, EveryCircuitContainsFlipFlops) {
  for (const auto& c : iscas89_descriptors()) {
    bool has_dff = false;
    for (const auto& [name, count] : c.composition)
      if (name == "DFF_X1" && count > 0) has_dff = true;
    EXPECT_TRUE(has_dff) << c.name;
  }
}

TEST(Iscas89, InstantiatesOverFullLibrary) {
  const auto& lib = rgleak::testing::full_library();
  math::Rng rng(89);
  const Netlist nl = make_iscas89(iscas89_descriptors()[4], lib, rng);  // s5378
  EXPECT_EQ(nl.size(), 2958u);
  EXPECT_EQ(nl.name(), "s5378");
  const UsageHistogram h = extract_usage(nl);
  h.validate();
  EXPECT_GT(h.alphas[lib.index_of("DFF_X1")], 0.05);
}

TEST(Iscas89, ShuffleIsSeedDeterministic) {
  const auto& lib = rgleak::testing::full_library();
  math::Rng r1(5), r2(5);
  const Netlist a = make_iscas89(iscas89_descriptors()[0], lib, r1);
  const Netlist b = make_iscas89(iscas89_descriptors()[0], lib, r2);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.gate(i).cell_index, b.gate(i).cell_index);
}

}  // namespace
}  // namespace rgleak::netlist
