#include "netlist/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "../test_util.h"
#include "netlist/random_circuit.h"
#include "util/require.h"

namespace rgleak::netlist {
namespace {

using rgleak::testing::mini_library;

Netlist sample_netlist(std::size_t n = 200) {
  UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[0] = 0.5;
  u.alphas[1] = 0.3;
  u.alphas[2] = 0.2;
  math::Rng rng(9);
  return generate_random_circuit(mini_library(), u, n, rng, UsageMatch::kExact, "sample");
}

TEST(NetlistIo, RoundTripPreservesOrder) {
  const Netlist orig = sample_netlist();
  std::stringstream buf;
  save_netlist(orig, buf);
  const Netlist loaded = load_netlist(mini_library(), buf);
  EXPECT_EQ(loaded.name(), "sample");
  ASSERT_EQ(loaded.size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i)
    EXPECT_EQ(loaded.gate(i).cell_index, orig.gate(i).cell_index) << "gate " << i;
}

TEST(NetlistIo, RunLengthEncodingIsCompact) {
  // A single-type netlist serializes to one run line.
  std::vector<GateInstance> gates(1000, {0});
  const Netlist nl("uniform", &mini_library(), gates);
  std::stringstream buf;
  save_netlist(nl, buf);
  std::size_t lines = 0;
  std::string line;
  while (std::getline(buf, line)) ++lines;
  EXPECT_EQ(lines, 4u);  // magic, name, gates, one run
}

// Loads from `text` expecting a ParseError; returns it for inspection.
ParseError parse_failure(const std::string& text, const std::string& source = "<stream>") {
  std::stringstream buf(text);
  try {
    (void)load_netlist(mini_library(), buf, source);
  } catch (const ParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected ParseError from: " << text;
  return ParseError("", 0, 0, "unreached");
}

TEST(NetlistIo, RejectsBadHeaderAndTruncation) {
  const ParseError bad = parse_failure("nope\n", "bad.rgnl");
  EXPECT_EQ(bad.source(), "bad.rgnl");
  EXPECT_EQ(bad.line(), 1u);
  EXPECT_NE(std::string(bad.what()).find("bad.rgnl:1"), std::string::npos);

  const Netlist orig = sample_netlist(50);
  std::stringstream buf;
  save_netlist(orig, buf);
  const std::string text = buf.str();
  const ParseError trunc = parse_failure(text.substr(0, text.size() - 20));
  EXPECT_GT(trunc.line(), 1u);
}

TEST(NetlistIo, RejectsUnknownCell) {
  const ParseError e = parse_failure("rgnl-v1\nname x\ngates 1\nNOT_A_CELL 1\n");
  EXPECT_EQ(e.line(), 4u);
  EXPECT_EQ(e.token(), "NOT_A_CELL");
}

TEST(NetlistIo, RejectsOverlongRun) {
  const ParseError e = parse_failure("rgnl-v1\nname x\ngates 2\nINV_X1 5\n");
  EXPECT_EQ(e.line(), 4u);
}

TEST(NetlistIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rgleak_test.rgnl";
  const Netlist orig = sample_netlist(100);
  save_netlist(orig, path);
  const Netlist loaded = load_netlist(mini_library(), path);
  EXPECT_EQ(loaded.size(), orig.size());
  EXPECT_THROW(load_netlist(mini_library(), path + ".missing"), IoError);
}

}  // namespace
}  // namespace rgleak::netlist
