#include "placement/placement.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "util/require.h"

namespace rgleak::placement {
namespace {

using rgleak::testing::mini_library;

TEST(Floorplan, GeometryAccessors) {
  Floorplan fp;
  fp.rows = 3;
  fp.cols = 5;
  fp.site_w_nm = 100.0;
  fp.site_h_nm = 200.0;
  EXPECT_EQ(fp.num_sites(), 15u);
  EXPECT_DOUBLE_EQ(fp.width_nm(), 500.0);
  EXPECT_DOUBLE_EQ(fp.height_nm(), 600.0);
  EXPECT_DOUBLE_EQ(fp.area_nm2(), 300000.0);
  EXPECT_DOUBLE_EQ(fp.site_x_nm(0), 50.0);
  EXPECT_DOUBLE_EQ(fp.site_x_nm(4), 450.0);
  EXPECT_DOUBLE_EQ(fp.site_y_nm(2), 500.0);
  EXPECT_THROW(fp.site_x_nm(5), ContractViolation);
  EXPECT_THROW(fp.site_y_nm(3), ContractViolation);
}

TEST(Floorplan, ForGateCountCoversAndIsTight) {
  for (std::size_t n : {1u, 2u, 10u, 100u, 101u, 1000u, 12345u}) {
    const Floorplan fp = Floorplan::for_gate_count(n);
    EXPECT_GE(fp.num_sites(), n);
    // No more than one extra row's worth of slack.
    EXPECT_LT(fp.num_sites(), n + fp.cols);
    // Near-square aspect.
    const double aspect =
        static_cast<double>(fp.rows) / static_cast<double>(fp.cols);
    EXPECT_GT(aspect, 0.4);
    EXPECT_LT(aspect, 2.1);
  }
}

TEST(Floorplan, ForGateCountContracts) {
  EXPECT_THROW(Floorplan::for_gate_count(0), ContractViolation);
  EXPECT_THROW(Floorplan::for_gate_count(10, 0.0, 1.0), ContractViolation);
}

TEST(Placement, RowMajorPositions) {
  const netlist::Netlist nl("t", &mini_library(), {{0}, {0}, {0}, {0}, {0}, {0}});
  Floorplan fp;
  fp.rows = 2;
  fp.cols = 3;
  fp.site_w_nm = 10.0;
  fp.site_h_nm = 20.0;
  const Placement p(&nl, fp);
  EXPECT_DOUBLE_EQ(p.x_nm(0), 5.0);
  EXPECT_DOUBLE_EQ(p.y_nm(0), 10.0);
  EXPECT_DOUBLE_EQ(p.x_nm(4), 15.0);  // site 4 = row 1, col 1
  EXPECT_DOUBLE_EQ(p.y_nm(4), 30.0);
}

TEST(Placement, DistanceIsEuclidean) {
  const netlist::Netlist nl("t", &mini_library(), {{0}, {0}, {0}, {0}});
  Floorplan fp;
  fp.rows = 2;
  fp.cols = 2;
  fp.site_w_nm = 30.0;
  fp.site_h_nm = 40.0;
  const Placement p(&nl, fp);
  EXPECT_DOUBLE_EQ(p.distance_nm(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(p.distance_nm(0, 1), 30.0);
  EXPECT_DOUBLE_EQ(p.distance_nm(0, 2), 40.0);
  EXPECT_DOUBLE_EQ(p.distance_nm(0, 3), 50.0);  // 3-4-5 triangle
}

TEST(Placement, RejectsOverfullFloorplan) {
  const netlist::Netlist nl("t", &mini_library(), {{0}, {0}, {0}});
  Floorplan fp;
  fp.rows = 1;
  fp.cols = 2;
  EXPECT_THROW(Placement(&nl, fp), ContractViolation);
  EXPECT_THROW(Placement(nullptr, fp), ContractViolation);
}

TEST(Placement, GateIndexBounds) {
  const netlist::Netlist nl("t", &mini_library(), {{0}});
  const Placement p(&nl, Floorplan::for_gate_count(1));
  EXPECT_THROW(p.site_of(1), ContractViolation);
}

}  // namespace
}  // namespace rgleak::placement
