#include "math/mgf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.h"
#include "math/stats.h"
#include "util/require.h"

namespace rgleak::math {
namespace {

// Representative cell model: leakage falls ~10x over +3 sigma of length.
LogQuadraticModel typical_model() {
  LogQuadraticModel m;
  m.a = 2.0e4;   // nA
  m.b = -0.12;   // 1/nm
  m.c = 0.0025;  // 1/nm^2
  return m;
}

TEST(LogQuadraticModel, Evaluation) {
  const LogQuadraticModel m = typical_model();
  const double l = 40.0;
  EXPECT_NEAR(m(l), m.a * std::exp(m.b * l + m.c * l * l), 1e-9);
}

TEST(LogQuadraticMoments, KParametersMatchPaperEquations) {
  const LogQuadraticModel m = typical_model();
  const double mu = 40.0, sigma = 2.5;
  const LogQuadraticMoments mo(m, mu, sigma);
  // Eq. (4): K1 = c sigma^2, K2 = (b/(2c) + mu)/sigma.
  EXPECT_NEAR(mo.k1(), m.c * sigma * sigma, 1e-14);
  EXPECT_NEAR(mo.k2(), (m.b / (2.0 * m.c) + mu) / sigma, 1e-12);
  // Eq. (5).
  const double shift = m.b / (2.0 * m.c) + mu;
  EXPECT_NEAR(mo.k3(), std::log(m.a) + m.b * mu + m.c * mu * mu - m.c * shift * shift, 1e-10);
}

TEST(LogQuadraticMoments, MomentsAreMgfAt1And2) {
  const LogQuadraticMoments mo(typical_model(), 40.0, 2.5);
  EXPECT_NEAR(mo.mean(), mo.mgf_log(1.0), 1e-10 * mo.mean());
  EXPECT_NEAR(mo.second_moment(), mo.mgf_log(2.0), 1e-10 * mo.second_moment());
}

TEST(LogQuadraticMoments, PaperFormEqualsRobustForm) {
  const LogQuadraticMoments mo(typical_model(), 40.0, 2.5);
  for (double t : {0.5, 1.0, 1.7, 2.0}) {
    EXPECT_NEAR(mo.mgf_log_paper_form(t), mo.mgf_log(t), 1e-9 * mo.mgf_log(t)) << "t=" << t;
  }
}

TEST(LogQuadraticMoments, MatchesMonteCarlo) {
  const LogQuadraticModel m = typical_model();
  const double mu = 40.0, sigma = 2.5;
  const LogQuadraticMoments mo(m, mu, sigma);
  Rng rng(37);
  RunningStats acc;
  const std::size_t n = 2000000;
  for (std::size_t i = 0; i < n; ++i) acc.add(m(rng.normal(mu, sigma)));
  EXPECT_NEAR(mo.mean(), acc.mean(), 5.0 * acc.stddev() / std::sqrt(static_cast<double>(n)));
  EXPECT_NEAR(mo.stddev(), acc.stddev(), 0.01 * acc.stddev());
}

TEST(LogQuadraticMoments, LognormalExactForCZero) {
  LogQuadraticModel m;
  m.a = 10.0;
  m.b = -0.1;
  m.c = 0.0;
  const double mu = 40.0, sigma = 2.5;
  const LogQuadraticMoments mo(m, mu, sigma);
  const double s = -m.b * sigma;  // sigma of ln X
  const double mean = m.a * std::exp(m.b * mu + 0.5 * s * s);
  const double second = m.a * m.a * std::exp(2.0 * m.b * mu + 2.0 * s * s);
  EXPECT_NEAR(mo.mean(), mean, 1e-10 * mean);
  EXPECT_NEAR(mo.second_moment(), second, 1e-10 * second);
  EXPECT_THROW(mo.k2(), ContractViolation);
  // mgf_log still valid (robust path).
  EXPECT_NEAR(mo.mgf_log(1.0), mean, 1e-10 * mean);
  EXPECT_THROW(mo.mgf_log_paper_form(1.0), ContractViolation);
}

TEST(LogQuadraticMoments, ZeroSigmaDegeneratesToPoint) {
  const LogQuadraticModel m = typical_model();
  const LogQuadraticMoments mo(m, 40.0, 0.0);
  EXPECT_NEAR(mo.mean(), m(40.0), 1e-10 * m(40.0));
  EXPECT_NEAR(mo.variance(), 0.0, 1e-8 * mo.mean() * mo.mean());
}

TEST(LogQuadraticMoments, VarianceIsPositiveForSpreadLength) {
  const LogQuadraticMoments mo(typical_model(), 40.0, 2.5);
  EXPECT_GT(mo.variance(), 0.0);
  EXPECT_GT(mo.stddev() / mo.mean(), 0.1);  // leakage varies substantially
}

TEST(LogQuadraticMoments, DivergentSecondMomentThrows) {
  LogQuadraticModel m;
  m.a = 1.0;
  m.b = 0.0;
  m.c = 0.05;  // 1 - 4 c sigma^2 < 0 for sigma = 2.5
  EXPECT_THROW(LogQuadraticMoments(m, 40.0, 2.5), NumericalError);
}

TEST(LogQuadraticMoments, RejectsNonPositiveScale) {
  LogQuadraticModel m;
  m.a = 0.0;
  EXPECT_THROW(LogQuadraticMoments(m, 40.0, 1.0), ContractViolation);
}

TEST(LogQuadraticMoments, MgfDivergenceThrows) {
  const LogQuadraticMoments mo(typical_model(), 40.0, 2.5);
  // Large t pushes 1 - 2 K1 t negative for positive K1.
  EXPECT_THROW(mo.mgf_log_paper_form(1.0e4), NumericalError);
}

}  // namespace
}  // namespace rgleak::math
