#include "math/vexp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "math/rng.h"

namespace rgleak::math {
namespace {

/// |a - b| in units of b's ULP (b = reference, finite, non-zero).
double ulp_distance(double a, double b) {
  const double ulp = std::nextafter(std::abs(b), std::numeric_limits<double>::infinity()) -
                     std::abs(b);
  return std::abs(a - b) / ulp;
}

double max_ulp_over(const std::vector<double>& xs) {
  std::vector<double> out(xs.size());
  vexp(xs.data(), out.data(), xs.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    worst = std::max(worst, ulp_distance(out[i], std::exp(xs[i])));
  return worst;
}

TEST(Vexp, UlpBoundOverLeakageTableLogRange) {
  // The MC leakage tables interpolate ln(I) for currents from sub-pA to mA:
  // log arguments within roughly [-20, 40]. Dense uniform sweep of a wider
  // window; the kernel must stay within a few ULP of std::exp.
  std::vector<double> xs;
  for (double x = -60.0; x <= 60.0; x += 7.3e-4) xs.push_back(x);
  EXPECT_LE(max_ulp_over(xs), 4.0);
}

TEST(Vexp, UlpBoundOverFullRange) {
  // Random arguments over the whole supported window, including values with
  // large 2^k scaling where the hi/lo ln2 split carries the accuracy.
  math::Rng rng(2027);
  std::vector<double> xs(200000);
  for (auto& x : xs) x = rng.uniform(kVexpMinArg, kVexpMaxArg);
  EXPECT_LE(max_ulp_over(xs), 4.0);
}

TEST(Vexp, ClampsExtremeArgumentsToFiniteNormals) {
  const std::vector<double> xs = {1.0e4, 800.0, kVexpMaxArg, kVexpMinArg, -800.0, -1.0e4};
  std::vector<double> out(xs.size());
  vexp(xs.data(), out.data(), xs.size());
  for (double v : out) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_TRUE(std::isnormal(v));
    EXPECT_GT(v, 0.0);
  }
  EXPECT_DOUBLE_EQ(out[0], out[2]);  // above-range inputs clamp to kVexpMaxArg
  EXPECT_DOUBLE_EQ(out[5], out[3]);  // below-range inputs clamp to kVexpMinArg
}

TEST(Vexp, InPlaceAndZeroLength) {
  std::vector<double> buf = {0.0, 1.0, -1.0, 2.5};
  const std::vector<double> copy = buf;
  vexp(buf.data(), buf.data(), buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_NEAR(buf[i], std::exp(copy[i]), 1e-15 * std::exp(copy[i]));
  vexp(nullptr, nullptr, 0);  // must be a no-op
}

TEST(Vexp, ExactAtZero) {
  const double x = 0.0;
  double y = -1.0;
  vexp(&x, &y, 1);
  EXPECT_DOUBLE_EQ(y, 1.0);
}

}  // namespace
}  // namespace rgleak::math
