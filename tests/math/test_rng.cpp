#include "math/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "math/stats.h"
#include "util/require.h"

namespace rgleak::math {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRangeRejectsInverted) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(1.0, 0.0), ContractViolation);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.variance(), 1.0, 0.03);
}

TEST(Rng, NormalSkewAndTails) {
  Rng rng(13);
  double third = 0.0;
  std::size_t beyond3 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    third += z * z * z;
    if (std::abs(z) > 3.0) ++beyond3;
  }
  EXPECT_NEAR(third / n, 0.0, 0.05);
  // P(|Z| > 3) = 0.0027.
  EXPECT_NEAR(static_cast<double>(beyond3) / n, 0.0027, 0.001);
}

TEST(Rng, NormalKurtosisAndWedgeRegion) {
  // The ziggurat's wedge accept/reject shapes the density between the
  // inscribed boxes and the curve; a kurtosis miss or a deficit near |z|~1
  // would expose a bad wedge test.
  Rng rng(37);
  const int n = 500000;
  double fourth = 0.0;
  int near_one = 0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    fourth += z * z * z * z;
    if (std::abs(z) > 0.8 && std::abs(z) < 1.2) ++near_one;
  }
  EXPECT_NEAR(fourth / n, 3.0, 0.1);
  // P(0.8 < |Z| < 1.2) = 2*(Phi(1.2) - Phi(0.8)) = 0.19373.
  EXPECT_NEAR(static_cast<double>(near_one) / n, 0.19373, 0.005);
}

TEST(Rng, NormalDeepTailFrequency) {
  // Samples beyond the ziggurat base edge (x ~ 3.654) come from the explicit
  // Marsaglia tail sampler; check it fires at the Gaussian rate.
  Rng rng(41);
  const int n = 2000000;
  int beyond = 0;
  double max_abs = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    max_abs = std::max(max_abs, std::abs(z));
    if (std::abs(z) > 3.6541528853610088) ++beyond;
  }
  // P(|Z| > 3.65415...) = 2.590e-4; expect ~518 of 2e6, sd ~23.
  EXPECT_NEAR(static_cast<double>(beyond) / n, 2.590e-4, 0.4e-4);
  EXPECT_GT(max_abs, 4.0);  // the tail sampler must actually reach past the edge
  EXPECT_LT(max_abs, 7.0);
}

TEST(Rng, NormalScaled) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
}

TEST(Rng, UniformIndexBoundsAndCoverage) {
  Rng rng(19);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto k = rng.uniform_index(10);
    ASSERT_LT(k, 10u);
    hits[k]++;
  }
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
  EXPECT_THROW(rng.uniform_index(0), ContractViolation);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int ones = 0;
  for (int i = 0; i < 100000; ++i) ones += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(ones / 100000.0, 0.3, 0.01);
  EXPECT_THROW(rng.bernoulli(1.5), ContractViolation);
}

TEST(Rng, ForkDecorrelates) {
  Rng rng(29);
  Rng child = rng.fork();
  RunningCovariance cov;
  for (int i = 0; i < 50000; ++i) cov.add(rng.normal(), child.normal());
  EXPECT_NEAR(cov.correlation(), 0.0, 0.02);
}

TEST(Rng, NormalVectorSizeAndIndependence) {
  Rng rng(31);
  const auto v = rng.normal_vector(10000);
  EXPECT_EQ(v.size(), 10000u);
  RunningCovariance lag1;
  for (std::size_t i = 0; i + 1 < v.size(); ++i) lag1.add(v[i], v[i + 1]);
  EXPECT_NEAR(lag1.correlation(), 0.0, 0.03);
}

}  // namespace
}  // namespace rgleak::math
