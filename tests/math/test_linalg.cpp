#include "math/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.h"
#include "util/require.h"

namespace rgleak::math {
namespace {

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  Matrix spd = a * a.transposed();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(Matrix, IdentityAndIndexing) {
  const Matrix i3 = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(i3(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, ProductAgainstHand) {
  Matrix a(2, 3), b(3, 2);
  double v = 1.0;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  v = 1.0;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = v++;
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 28.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 49.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 64.0);
}

TEST(Matrix, ProductDimensionMismatchThrows) {
  Matrix a(2, 3), b(2, 2);
  EXPECT_THROW(a * b, ContractViolation);
}

TEST(Matrix, SumDiffScale) {
  Matrix a(2, 2, 1.0), b(2, 2, 2.0);
  EXPECT_DOUBLE_EQ((a + b)(0, 0), 3.0);
  EXPECT_DOUBLE_EQ((b - a)(1, 1), 1.0);
  EXPECT_DOUBLE_EQ((3.0 * b)(0, 1), 6.0);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(5);
  Matrix a(3, 4);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.normal();
  const Matrix att = a.transposed().transposed();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(att(r, c), a(r, c));
}

TEST(Cholesky, ReconstructsMatrix) {
  Rng rng(7);
  const Matrix a = random_spd(6, rng);
  const Matrix l = cholesky(a);
  const Matrix back = l * l.transposed();
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 6; ++c) EXPECT_NEAR(back(r, c), a(r, c), 1e-9);
}

TEST(Cholesky, LowerTriangular) {
  Rng rng(11);
  const Matrix l = cholesky(random_spd(5, rng));
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = r + 1; c < 5; ++c) EXPECT_DOUBLE_EQ(l(r, c), 0.0);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_THROW(cholesky(a), NumericalError);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(cholesky(Matrix(2, 3)), ContractViolation);
}

TEST(Solves, SpdSolveMatchesDirect) {
  Rng rng(13);
  const Matrix a = random_spd(8, rng);
  std::vector<double> x_true(8);
  for (auto& x : x_true) x = rng.normal();
  const std::vector<double> b = a * x_true;
  const std::vector<double> x = solve_spd(a, b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Solves, TriangularSubstitutions) {
  Matrix l(3, 3);
  l(0, 0) = 2.0;
  l(1, 0) = 1.0;
  l(1, 1) = 3.0;
  l(2, 0) = 0.5;
  l(2, 1) = -1.0;
  l(2, 2) = 1.5;
  const std::vector<double> b = {2.0, 7.0, 0.0};
  const std::vector<double> y = forward_substitute(l, b);
  EXPECT_NEAR(y[0], 1.0, 1e-12);
  EXPECT_NEAR(y[1], 2.0, 1e-12);
  EXPECT_NEAR(y[2], 1.0, 1e-12);
  // L^T x = y round trip: solve and verify.
  const std::vector<double> x = backward_substitute_transposed(l, y);
  // Verify L^T x == y.
  const Matrix lt = l.transposed();
  const std::vector<double> check = lt * x;
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(check[i], y[i], 1e-12);
}

TEST(LeastSquares, ExactForSquareSystem) {
  Rng rng(17);
  Matrix a(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.normal();
  std::vector<double> x_true = {1.0, -2.0, 3.0, 0.5};
  const std::vector<double> b = a * x_true;
  const std::vector<double> x = solve_least_squares(a, b);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(LeastSquares, MinimizesResidualOnOverdetermined) {
  // Fit a line to noisy points; compare against the normal-equations result.
  Rng rng(19);
  const std::size_t n = 50;
  Matrix a(n, 2);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / 10.0;
    a(i, 0) = 1.0;
    a(i, 1) = x;
    b[i] = 2.0 + 0.7 * x + 0.01 * rng.normal();
  }
  const std::vector<double> beta = solve_least_squares(a, b);
  // Normal equations: (A^T A) beta = A^T b.
  const Matrix ata = a.transposed() * a;
  const std::vector<double> atb = a.transposed() * b;
  const std::vector<double> beta_ne = solve_spd(ata, atb);
  EXPECT_NEAR(beta[0], beta_ne[0], 1e-9);
  EXPECT_NEAR(beta[1], beta_ne[1], 1e-9);
  EXPECT_NEAR(beta[0], 2.0, 0.02);
  EXPECT_NEAR(beta[1], 0.7, 0.02);
}

TEST(LeastSquares, RejectsUnderdetermined) {
  EXPECT_THROW(solve_least_squares(Matrix(2, 3), std::vector<double>(2)), ContractViolation);
}

TEST(LeastSquares, RejectsRankDeficient) {
  Matrix a(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // second column = 2 * first after elimination -> singular R
  }
  // Columns are linearly dependent.
  EXPECT_THROW(solve_least_squares(a, std::vector<double>{1, 2, 3}), NumericalError);
}

TEST(Helpers, DotAndDet2) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), ContractViolation);
  EXPECT_DOUBLE_EQ(det2(1, 2, 3, 4), -2.0);
}

}  // namespace
}  // namespace rgleak::math
