#include "math/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.h"
#include "util/require.h"

namespace rgleak::math {
namespace {

TEST(SampleSet, MeanAndStddevMatchRunningStats) {
  SampleSet s;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) s.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
  EXPECT_EQ(s.count(), 10000u);
}

TEST(SampleSet, PercentilesOfKnownSet) {
  SampleSet s;
  for (int i = 1; i <= 5; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.25), 2.0);  // type-7 interpolation
  EXPECT_DOUBLE_EQ(s.percentile(0.125), 1.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleSet, PercentileUnaffectedByInsertionOrder) {
  SampleSet a, b;
  a.add(3);
  a.add(1);
  a.add(2);
  b.add(1);
  b.add(2);
  b.add(3);
  EXPECT_DOUBLE_EQ(a.percentile(0.5), b.percentile(0.5));
}

TEST(SampleSet, CacheInvalidatedByNewSamples) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 2.0);
  s.add(10.0);  // after a percentile query
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 10.0);
}

TEST(SampleSet, GaussianQuantilesApproximatelyCorrect) {
  SampleSet s;
  Rng rng(2);
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.percentile(0.5), 0.0, 0.02);
  EXPECT_NEAR(s.percentile(0.8413), 1.0, 0.03);
  EXPECT_NEAR(s.percentile(0.9772), 2.0, 0.05);
}

TEST(SampleSet, ContractChecks) {
  SampleSet s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.percentile(0.5), ContractViolation);
  s.add(1.0);
  EXPECT_THROW(s.stddev(), ContractViolation);
  EXPECT_THROW(s.percentile(1.5), ContractViolation);
}

}  // namespace
}  // namespace rgleak::math
