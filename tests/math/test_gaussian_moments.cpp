#include "math/gaussian_moments.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/quadrature.h"
#include "math/rng.h"
#include "math/stats.h"
#include "util/require.h"

namespace rgleak::math {
namespace {

// Reference: 1-D expectation by direct numeric integration over the Gaussian.
double numeric_1d(double b, double c, double mu, double var) {
  const double sigma = std::sqrt(var);
  return integrate_adaptive(
      [&](double z) {
        const double l = mu + sigma * z;
        return std::exp(b * l + c * l * l) * std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
      },
      -12.0, 12.0, {1e-13, 1e-12});
}

TEST(ExpQuadratic1d, LognormalLimitCZero) {
  // c = 0: E[exp(bL)] = exp(b mu + b^2 var / 2).
  const double b = 0.3, mu = 2.0, var = 0.5;
  EXPECT_NEAR(expectation_exp_quadratic_1d(b, 0.0, mu, var),
              std::exp(b * mu + 0.5 * b * b * var), 1e-12);
}

TEST(ExpQuadratic1d, MatchesNumericIntegration) {
  for (const auto& [b, c] : std::vector<std::pair<double, double>>{
           {-0.1, 0.002}, {0.2, -0.01}, {-0.05, 0.0005}, {0.0, 0.004}}) {
    const double mu = 40.0, var = 6.25;
    const double closed = expectation_exp_quadratic_1d(b, c, mu, var);
    const double numeric = numeric_1d(b, c, mu, var);
    EXPECT_NEAR(closed, numeric, 1e-7 * numeric) << "b=" << b << " c=" << c;
  }
}

TEST(ExpQuadratic1d, ZeroVarianceIsPointEvaluation) {
  EXPECT_NEAR(expectation_exp_quadratic_1d(0.5, 0.1, 2.0, 0.0), std::exp(0.5 * 2 + 0.1 * 4),
              1e-12);
}

TEST(ExpQuadratic1d, DivergenceThrows) {
  // 1 - 2 c var <= 0.
  EXPECT_THROW(expectation_exp_quadratic_1d(0.0, 1.0, 0.0, 1.0), NumericalError);
}

TEST(ExpQuadratic1d, RejectsNegativeVariance) {
  EXPECT_THROW(expectation_exp_quadratic_1d(0.0, 0.0, 0.0, -1.0), ContractViolation);
}

TEST(ExpQuadraticGeneral, MatchesSpecialized1d) {
  const double b = -0.08, c = 0.003, mu = 40.0, var = 4.0;
  Matrix a(1, 1);
  a(0, 0) = c;
  Matrix sigma(1, 1);
  sigma(0, 0) = var;
  EXPECT_NEAR(expectation_exp_quadratic({b}, a, {mu}, sigma),
              expectation_exp_quadratic_1d(b, c, mu, var), 1e-12);
}

TEST(ExpQuadraticGeneral, IndependentCaseFactors) {
  // rho = 0: expectation factors into the two 1-D expectations.
  const double b1 = -0.1, c1 = 0.002, b2 = 0.05, c2 = 0.001, mu = 40.0, var = 6.25;
  const double joint = expectation_exp_quadratic_2d(b1, c1, b2, c2, mu, var, 0.0);
  const double product = expectation_exp_quadratic_1d(b1, c1, mu, var) *
                         expectation_exp_quadratic_1d(b2, c2, mu, var);
  EXPECT_NEAR(joint, product, 1e-10 * product);
}

TEST(ExpQuadratic2d, PerfectCorrelationCollapses) {
  const double b1 = -0.1, c1 = 0.002, b2 = 0.07, c2 = 0.001, mu = 40.0, var = 6.25;
  const double collapsed = expectation_exp_quadratic_1d(b1 + b2, c1 + c2, mu, var);
  EXPECT_NEAR(expectation_exp_quadratic_2d(b1, c1, b2, c2, mu, var, 1.0), collapsed,
              1e-10 * collapsed);
  // Just below the degeneracy threshold the general path should be close too.
  const double near_one = expectation_exp_quadratic_2d(b1, c1, b2, c2, mu, var, 0.999999);
  EXPECT_NEAR(near_one, collapsed, 1e-3 * collapsed);
}

TEST(ExpQuadratic2d, AntiCorrelationMatchesSubstitution) {
  const double b1 = -0.1, c1 = 0.002, b2 = 0.07, c2 = 0.001, mu = 40.0, var = 6.25;
  // Monte-Carlo reference with L2 = 2 mu - L1.
  Rng rng(11);
  RunningStats acc;
  for (int i = 0; i < 400000; ++i) {
    const double l1 = rng.normal(mu, std::sqrt(var));
    const double l2 = 2.0 * mu - l1;
    acc.add(std::exp(b1 * l1 + c1 * l1 * l1 + b2 * l2 + c2 * l2 * l2));
  }
  const double closed = expectation_exp_quadratic_2d(b1, c1, b2, c2, mu, var, -1.0);
  EXPECT_NEAR(closed, acc.mean(), 4.0 * acc.stddev() / std::sqrt(400000.0));
}

TEST(ExpQuadratic2d, MonteCarloAgreementAtIntermediateRho) {
  const double b1 = -0.12, c1 = 0.003, b2 = -0.06, c2 = 0.001, mu = 40.0, var = 6.25;
  const double rho = 0.6;
  Rng rng(13);
  RunningStats acc;
  const std::size_t n = 500000;
  for (std::size_t i = 0; i < n; ++i) {
    const double z1 = rng.normal();
    const double z2 = rho * z1 + std::sqrt(1.0 - rho * rho) * rng.normal();
    const double l1 = mu + std::sqrt(var) * z1;
    const double l2 = mu + std::sqrt(var) * z2;
    acc.add(std::exp(b1 * l1 + c1 * l1 * l1 + b2 * l2 + c2 * l2 * l2));
  }
  const double closed = expectation_exp_quadratic_2d(b1, c1, b2, c2, mu, var, rho);
  EXPECT_NEAR(closed, acc.mean(), 5.0 * acc.stddev() / std::sqrt(static_cast<double>(n)));
}

TEST(ExpQuadratic2d, ZeroVarianceIsPointEvaluation) {
  const double v = expectation_exp_quadratic_2d(0.1, 0.01, 0.2, 0.02, 3.0, 0.0, 0.5);
  EXPECT_NEAR(v, std::exp(0.3 * 3.0 + 0.03 * 9.0), 1e-12);
}

TEST(ExpQuadratic2d, RejectsBadRho) {
  EXPECT_THROW(expectation_exp_quadratic_2d(0, 0, 0, 0, 0, 1.0, 1.5), ContractViolation);
}

TEST(ExpQuadraticGeneral, RejectsAsymmetricA) {
  Matrix a(2, 2);
  a(0, 1) = 0.1;  // a(1,0) stays 0 -> asymmetric
  Matrix sigma = Matrix::identity(2);
  EXPECT_THROW(expectation_exp_quadratic({0, 0}, a, {0, 0}, sigma), ContractViolation);
}

TEST(ExpQuadraticGeneral, DivergenceThrows) {
  Matrix a = Matrix::identity(2);  // c = 1 with unit variance diverges
  Matrix sigma = Matrix::identity(2);
  EXPECT_THROW(expectation_exp_quadratic({0, 0}, a, {0, 0}, sigma), NumericalError);
}

}  // namespace
}  // namespace rgleak::math
