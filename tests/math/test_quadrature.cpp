#include "math/quadrature.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.h"

namespace rgleak::math {
namespace {

TEST(AdaptiveSimpson, Polynomial) {
  // int_0^1 (3x^2 + 2x + 1) dx = 3.
  const double v = integrate_adaptive([](double x) { return 3 * x * x + 2 * x + 1; }, 0.0, 1.0);
  EXPECT_NEAR(v, 3.0, 1e-10);
}

TEST(AdaptiveSimpson, Exponential) {
  const double v = integrate_adaptive([](double x) { return std::exp(-x); }, 0.0, 10.0);
  EXPECT_NEAR(v, 1.0 - std::exp(-10.0), 1e-9);
}

TEST(AdaptiveSimpson, OscillatoryNeedsRefinement) {
  // int_0^2pi sin^2(10 x) dx = pi.
  const double v =
      integrate_adaptive([](double x) { return std::sin(10 * x) * std::sin(10 * x); }, 0.0,
                         2.0 * M_PI);
  EXPECT_NEAR(v, M_PI, 1e-8);
}

TEST(AdaptiveSimpson, ZeroWidthInterval) {
  EXPECT_DOUBLE_EQ(integrate_adaptive([](double) { return 1.0; }, 2.0, 2.0), 0.0);
}

TEST(AdaptiveSimpson, RejectsInvertedInterval) {
  EXPECT_THROW(integrate_adaptive([](double) { return 1.0; }, 1.0, 0.0), ContractViolation);
}

TEST(AdaptiveSimpson, SharpPeak) {
  // Narrow Gaussian fully inside the interval: integral ~ sqrt(2 pi) sigma.
  const double sigma = 1e-2;
  const double v = integrate_adaptive(
      [=](double x) { return std::exp(-0.5 * (x - 0.37) * (x - 0.37) / (sigma * sigma)); }, 0.0,
      1.0, {1e-12, 1e-10, 60});
  EXPECT_NEAR(v, std::sqrt(2.0 * M_PI) * sigma, 1e-8);
}

TEST(GaussLegendre, NodesSymmetricWeightsSumToTwo) {
  for (std::size_t n : {1u, 2u, 5u, 16u, 33u}) {
    const GaussLegendreRule rule = gauss_legendre(n);
    ASSERT_EQ(rule.nodes.size(), n);
    double wsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      wsum += rule.weights[i];
      EXPECT_NEAR(rule.nodes[i], -rule.nodes[n - 1 - i], 1e-13);
      EXPECT_NEAR(rule.weights[i], rule.weights[n - 1 - i], 1e-13);
      EXPECT_GT(rule.weights[i], 0.0);
    }
    EXPECT_NEAR(wsum, 2.0, 1e-12);
  }
}

TEST(GaussLegendre, ExactForPolynomialsUpToDegree2nMinus1) {
  // 5-point rule integrates x^9 exactly on [-1, 1] (odd -> 0) and x^8.
  const double v8 = integrate_gauss([](double x) { return std::pow(x, 8); }, -1.0, 1.0, 5);
  EXPECT_NEAR(v8, 2.0 / 9.0, 1e-12);
  const double v9 = integrate_gauss([](double x) { return std::pow(x, 9); }, -1.0, 1.0, 5);
  EXPECT_NEAR(v9, 0.0, 1e-13);
}

TEST(GaussLegendre, ArbitraryInterval) {
  const double v = integrate_gauss([](double x) { return 1.0 / x; }, 1.0, std::exp(1.0), 20);
  EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Integrate2D, SeparableProduct) {
  // int_0^1 int_0^2 x y dy dx = 1/2 * 2 = 1.
  const double v = integrate_2d([](double x, double y) { return x * y; }, 0, 1, 0, 2);
  EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Integrate2D, GaussianBump) {
  // Radially symmetric Gaussian over a large box ~ 2 pi sigma^2.
  const double s = 0.1;
  const double v = integrate_2d(
      [=](double x, double y) { return std::exp(-0.5 * (x * x + y * y) / (s * s)); }, -2, 2, -2,
      2, 24, 8, 8);
  EXPECT_NEAR(v, 2.0 * M_PI * s * s, 1e-8);
}

TEST(Integrate2D, RejectsBadRectangleOrPanels) {
  EXPECT_THROW(integrate_2d([](double, double) { return 1.0; }, 1, 0, 0, 1),
               ContractViolation);
  EXPECT_THROW(integrate_2d([](double, double) { return 1.0; }, 0, 1, 0, 1, 8, 0, 1),
               ContractViolation);
}

TEST(Integrate2DAdaptive, RefinesToTolerance) {
  // Exponential correlation-like kernel: int over [0,W]x[0,H] of
  // (W-x)(H-y) exp(-r/l).
  const double w = 10.0, h = 7.0, l = 2.0;
  const auto f = [&](double x, double y) {
    return (w - x) * (h - y) * std::exp(-std::hypot(x, y) / l);
  };
  const double coarse = integrate_2d(f, 0, w, 0, h, 8, 2, 2);
  const double fine = integrate_2d(f, 0, w, 0, h, 24, 32, 32);
  const double adaptive = integrate_2d_adaptive(f, 0, w, 0, h, {1e-10, 1e-9});
  EXPECT_NEAR(adaptive, fine, 1e-6 * std::abs(fine));
  // Sanity: the coarse estimate is in the same ballpark.
  EXPECT_NEAR(coarse, fine, 0.05 * std::abs(fine));
}

}  // namespace
}  // namespace rgleak::math
