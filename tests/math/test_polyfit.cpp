#include "math/polyfit.h"

#include <gtest/gtest.h>

#include "math/rng.h"
#include "util/require.h"

namespace rgleak::math {
namespace {

TEST(Polyfit, RecoversExactQuadratic) {
  const std::vector<double> truth = {1.5, -2.0, 0.25};
  std::vector<double> x, y;
  for (int i = 0; i < 7; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(polyval(truth, x.back()));
  }
  const auto c = polyfit(x, y, 2);
  ASSERT_EQ(c.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(c[i], truth[i], 1e-9);
}

TEST(Polyfit, RecoversLineFromNoisyData) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i * 0.1);
    y.push_back(3.0 - 0.5 * x.back() + 0.001 * rng.normal());
  }
  const auto c = polyfit(x, y, 1);
  EXPECT_NEAR(c[0], 3.0, 1e-3);
  EXPECT_NEAR(c[1], -0.5, 1e-3);
}

TEST(Polyfit, DegreeZeroIsMean) {
  const auto c = polyfit({1, 2, 3}, {4.0, 6.0, 8.0}, 0);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NEAR(c[0], 6.0, 1e-12);
}

TEST(Polyfit, RejectsTooFewSamples) {
  EXPECT_THROW(polyfit({1.0, 2.0}, {1.0, 2.0}, 2), ContractViolation);
}

TEST(Polyfit, RejectsMismatchedSizes) {
  EXPECT_THROW(polyfit({1.0, 2.0, 3.0}, {1.0, 2.0}, 1), ContractViolation);
}

TEST(Polyfit, RejectsCoincidentAbscissae) {
  // All x identical -> Vandermonde rank-deficient.
  EXPECT_THROW(polyfit({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0}, 1), NumericalError);
}

TEST(Polyval, HornerAgainstDirect) {
  const std::vector<double> c = {1.0, -1.0, 2.0, 0.5};
  const double x = 1.7;
  EXPECT_NEAR(polyval(c, x), 1.0 - x + 2 * x * x + 0.5 * x * x * x, 1e-12);
  EXPECT_DOUBLE_EQ(polyval({}, 3.0), 0.0);
}

}  // namespace
}  // namespace rgleak::math
