#include "math/fft.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.h"
#include "util/require.h"

namespace rgleak::math {
namespace {

using cvec = std::vector<std::complex<double>>;

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_THROW(next_pow2(0), ContractViolation);
}

TEST(Fft, RejectsNonPow2) {
  cvec v(6);
  EXPECT_THROW(fft(v, false), ContractViolation);
}

TEST(Fft, DeltaTransformsToConstant) {
  cvec v(8, {0.0, 0.0});
  v[0] = {1.0, 0.0};
  fft(v, false);
  for (const auto& x : v) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantTransformsToDelta) {
  cvec v(8, {1.0, 0.0});
  fft(v, false);
  EXPECT_NEAR(v[0].real(), 8.0, 1e-12);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_NEAR(std::abs(v[i]), 0.0, 1e-12);
}

TEST(Fft, SingleToneBin) {
  const std::size_t n = 64;
  cvec v(n);
  for (std::size_t j = 0; j < n; ++j)
    v[j] = {std::cos(2.0 * M_PI * 5.0 * static_cast<double>(j) / n), 0.0};
  fft(v, false);
  EXPECT_NEAR(v[5].real(), n / 2.0, 1e-9);
  EXPECT_NEAR(v[n - 5].real(), n / 2.0, 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != 5 && k != n - 5) {
      EXPECT_NEAR(std::abs(v[k]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, RoundTrip) {
  Rng rng(3);
  cvec v(128);
  for (auto& x : v) x = {rng.normal(), rng.normal()};
  const cvec orig = v;
  fft(v, false);
  fft(v, true);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(v[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, Parseval) {
  Rng rng(5);
  cvec v(256);
  double time_energy = 0.0;
  for (auto& x : v) {
    x = {rng.normal(), rng.normal()};
    time_energy += std::norm(x);
  }
  fft(v, false);
  double freq_energy = 0.0;
  for (const auto& x : v) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy, 256.0 * time_energy, 1e-6 * freq_energy);
}

TEST(Fft2d, RoundTrip) {
  Rng rng(7);
  const std::size_t rows = 16, cols = 32;
  cvec v(rows * cols);
  for (auto& x : v) x = {rng.normal(), rng.normal()};
  const cvec orig = v;
  fft2d(v, rows, cols, false);
  fft2d(v, rows, cols, true);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(v[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft2d, SeparableTransform) {
  // FFT2D of an outer product equals the outer product of the 1-D FFTs.
  const std::size_t n = 8;
  cvec row(n), col(n);
  Rng rng(9);
  for (auto& x : row) x = {rng.normal(), 0.0};
  for (auto& x : col) x = {rng.normal(), 0.0};
  cvec grid(n * n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) grid[r * n + c] = col[r] * row[c];
  fft2d(grid, n, n, false);
  cvec frow = row, fcol = col;
  fft(frow, false);
  fft(fcol, false);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      EXPECT_NEAR(std::abs(grid[r * n + c] - fcol[r] * frow[c]), 0.0, 1e-9);
}

TEST(Fft2d, RejectsSizeMismatch) {
  cvec v(15);
  EXPECT_THROW(fft2d(v, 4, 4, false), ContractViolation);
}

TEST(FftPlan, MatchesAdHocFftWithinRounding) {
  // The plan hoists twiddles out of the butterfly loop, which removes the
  // w *= w_len recurrence; results agree with fft() to rounding error.
  Rng rng(11);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                              std::size_t{128}}) {
    const FftPlan plan(n);
    for (const bool inverse : {false, true}) {
      cvec a(n), b;
      for (auto& x : a) x = {rng.normal(), rng.normal()};
      b = a;
      fft(a, inverse);
      plan.run(b.data(), inverse);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-11 * std::sqrt(static_cast<double>(n)))
            << "n=" << n << " inverse=" << inverse << " i=" << i;
    }
  }
}

TEST(FftPlan, RejectsNonPow2) { EXPECT_THROW(FftPlan(6), ContractViolation); }

TEST(FftPlan2D, MatchesFft2dWithinRounding) {
  Rng rng(13);
  const std::size_t rows = 16, cols = 32;
  const FftPlan2D plan(rows, cols);
  for (const bool inverse : {false, true}) {
    cvec a(rows * cols), scratch;
    for (auto& x : a) x = {rng.normal(), rng.normal()};
    cvec b = a;
    fft2d(a, rows, cols, inverse);
    plan.run(b, inverse, scratch);
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-10) << "inverse=" << inverse << " i=" << i;
  }
}

TEST(FftPlan2D, RoundTripIsExactToTolerance) {
  Rng rng(17);
  const std::size_t rows = 32, cols = 16;
  const FftPlan2D plan(rows, cols);
  cvec v(rows * cols), scratch;
  for (auto& x : v) x = {rng.normal(), rng.normal()};
  const cvec orig = v;
  plan.run(v, false, scratch);
  plan.run(v, true, scratch);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_NEAR(std::abs(v[i] - orig[i]), 0.0, 1e-10);
}

TEST(FftPlan2D, TopRowsPruningIsBitIdenticalOnKeptRows) {
  // run_top_rows must produce exactly the bits run() produces on the rows it
  // keeps — the field sampler's stream depends on it.
  Rng rng(19);
  const std::size_t rows = 16, cols = 8, keep = 5;
  const FftPlan2D plan(rows, cols);
  cvec full(rows * cols), pruned, scratch_a, scratch_b;
  for (auto& x : full) x = {rng.normal(), rng.normal()};
  pruned = full;
  plan.run(full, true, scratch_a);
  plan.run_top_rows(pruned, true, scratch_b, keep);
  for (std::size_t r = 0; r < keep; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(full[r * cols + c].real(), pruned[r * cols + c].real());
      EXPECT_EQ(full[r * cols + c].imag(), pruned[r * cols + c].imag());
    }
}

TEST(FftPlan2D, ColMajorVariantIsBitIdenticalOnKeptRows) {
  // Feeding the input pre-transposed must reproduce run()'s bits exactly on
  // the kept rows — the field sampler generates its noise column-major and
  // relies on this equivalence.
  Rng rng(23);
  const std::size_t rows = 32, cols = 16, keep = 7;
  const FftPlan2D plan(rows, cols);
  for (const bool inverse : {false, true}) {
    cvec rowmajor(rows * cols), colmajor(rows * cols), out, scratch;
    for (auto& x : rowmajor) x = {rng.normal(), rng.normal()};
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c) colmajor[c * rows + r] = rowmajor[r * cols + c];
    plan.run(rowmajor, inverse, scratch);
    plan.run_top_rows_colmajor(colmajor, inverse, out, keep);
    for (std::size_t r = 0; r < keep; ++r)
      for (std::size_t c = 0; c < cols; ++c) {
        EXPECT_EQ(rowmajor[r * cols + c].real(), out[r * cols + c].real());
        EXPECT_EQ(rowmajor[r * cols + c].imag(), out[r * cols + c].imag());
      }
  }
}

TEST(CrossCorrelator2D, MatchesBruteForceOnRandomGrids) {
  Rng rng(7);
  for (const auto [rows, cols] : {std::pair<std::size_t, std::size_t>{4, 4},
                                  {3, 7},
                                  {1, 5},
                                  {6, 2}}) {
    std::vector<double> a(rows * cols), b(rows * cols);
    for (auto& x : a) x = rng.normal();
    for (auto& x : b) x = rng.normal();
    const CrossCorrelator2D xc(rows, cols);
    const std::vector<double> got = xc.correlate(xc.transform(a), xc.transform(b));
    ASSERT_EQ(got.size(), (2 * rows - 1) * (2 * cols - 1));
    for (std::ptrdiff_t dr = -(std::ptrdiff_t)(rows - 1); dr < (std::ptrdiff_t)rows; ++dr)
      for (std::ptrdiff_t dc = -(std::ptrdiff_t)(cols - 1); dc < (std::ptrdiff_t)cols; ++dc) {
        double want = 0.0;
        for (std::size_t r = 0; r < rows; ++r)
          for (std::size_t c = 0; c < cols; ++c) {
            const std::ptrdiff_t r2 = (std::ptrdiff_t)r + dr, c2 = (std::ptrdiff_t)c + dc;
            if (r2 < 0 || c2 >= (std::ptrdiff_t)cols || c2 < 0 ||
                r2 >= (std::ptrdiff_t)rows)
              continue;
            want += a[r * cols + c] * b[(std::size_t)r2 * cols + (std::size_t)c2];
          }
        const std::size_t idx =
            (std::size_t)(dr + (std::ptrdiff_t)rows - 1) * (2 * cols - 1) +
            (std::size_t)(dc + (std::ptrdiff_t)cols - 1);
        EXPECT_NEAR(got[idx], want, 1e-9) << rows << "x" << cols << " d=(" << dr << "," << dc
                                          << ")";
      }
  }
}

TEST(CrossCorrelator2D, IndicatorGridCountsAreIntegers) {
  // The estimator relies on indicator-grid correlations landing on integers
  // to FFT precision.
  const std::size_t rows = 8, cols = 8;
  std::vector<double> occ(rows * cols, 0.0);
  Rng rng(9);
  for (std::size_t i = 0; i < occ.size(); ++i) occ[i] = rng.uniform() < 0.4 ? 1.0 : 0.0;
  const CrossCorrelator2D xc(rows, cols);
  const std::vector<double> counts = xc.correlate(xc.transform(occ), xc.transform(occ));
  for (double c : counts) EXPECT_NEAR(c, std::round(c), 1e-7);
}

}  // namespace
}  // namespace rgleak::math
