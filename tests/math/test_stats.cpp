#include "math/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.h"
#include "util/require.h"

namespace rgleak::math {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.0, 0.5};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStats, StableUnderLargeOffset) {
  // Catastrophic cancellation check: values near 1e12 with unit variance.
  Rng rng(3);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(1e12 + rng.normal());
  EXPECT_NEAR(s.variance(), 1.0, 0.05);
}

TEST(RunningStats, MergeEqualsPooled) {
  Rng rng(5);
  RunningStats a, b, pooled;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    (i % 2 ? a : b).add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double m = a.mean();
  a.merge(empty);
  EXPECT_NEAR(a.mean(), m, 1e-15);
  RunningStats c;
  c.merge(a);
  EXPECT_NEAR(c.mean(), m, 1e-15);
}

TEST(RunningStats, PreconditionErrors) {
  RunningStats s;
  EXPECT_THROW(s.mean(), ContractViolation);
  s.add(1.0);
  EXPECT_THROW(s.variance(), ContractViolation);
}

TEST(RunningCovariance, MatchesDirect) {
  RunningCovariance c;
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 5, 4, 5};
  for (std::size_t i = 0; i < x.size(); ++i) c.add(x[i], y[i]);
  // Direct: cov = E[(x - mx)(y - my)] * n/(n-1).
  double mx = mean(x), my = mean(y), cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) cov += (x[i] - mx) * (y[i] - my);
  cov /= static_cast<double>(x.size() - 1);
  EXPECT_NEAR(c.covariance(), cov, 1e-12);
  EXPECT_NEAR(c.correlation(), correlation(x, y), 1e-12);
}

TEST(RunningCovariance, PerfectCorrelation) {
  RunningCovariance c;
  for (int i = 0; i < 100; ++i) c.add(i, 2.0 * i + 1.0);
  EXPECT_NEAR(c.correlation(), 1.0, 1e-12);
  RunningCovariance d;
  for (int i = 0; i < 100; ++i) d.add(i, -0.5 * i);
  EXPECT_NEAR(d.correlation(), -1.0, 1e-12);
}

TEST(RunningCovariance, IndependentNearZero) {
  Rng rng(7);
  RunningCovariance c;
  for (int i = 0; i < 100000; ++i) c.add(rng.normal(), rng.normal());
  EXPECT_NEAR(c.correlation(), 0.0, 0.02);
}

TEST(RunningCovariance, DegenerateMarginalThrows) {
  RunningCovariance c;
  c.add(1.0, 1.0);
  c.add(1.0, 2.0);
  EXPECT_THROW(c.correlation(), ContractViolation);
}

TEST(VectorStats, EdgeCases) {
  EXPECT_THROW(mean({}), ContractViolation);
  EXPECT_THROW(variance({1.0}), ContractViolation);
  EXPECT_THROW(correlation({1.0, 2.0}, {1.0}), ContractViolation);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_NEAR(stddev({1.0, 3.0}), std::sqrt(2.0), 1e-12);
}

TEST(RelativeError, Definition) {
  EXPECT_NEAR(relative_error(1.1, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(relative_error(0.9, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(relative_error(0.5, 0.0), 0.5, 1e-12);  // absolute fallback
}

}  // namespace
}  // namespace rgleak::math
