// Backoff jitter and the injectable clock: schedules must be deterministic
// per seed, bounded by [base, cap], and testable with zero real sleeping.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/backoff.h"
#include "util/clock.h"

namespace rgleak::util {
namespace {

TEST(Backoff, FirstDelayIsExactlyBase) {
  BackoffPolicy policy;
  policy.base_ms = 40.0;
  BackoffState state = backoff_state_for(7);
  EXPECT_EQ(next_backoff_ms(policy, state), 40.0);
}

TEST(Backoff, EveryDelayStaysWithinBaseAndCap) {
  BackoffPolicy policy;
  policy.base_ms = 10.0;
  policy.cap_ms = 200.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    BackoffState state = backoff_state_for(seed);
    for (int i = 0; i < 50; ++i) {
      const double d = next_backoff_ms(policy, state);
      EXPECT_GE(d, policy.base_ms) << "seed " << seed << " step " << i;
      EXPECT_LE(d, policy.cap_ms) << "seed " << seed << " step " << i;
    }
  }
}

TEST(Backoff, SchedulesAreDeterministicPerSeed) {
  BackoffPolicy policy;
  BackoffState a = backoff_state_for(123);
  BackoffState b = backoff_state_for(123);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(next_backoff_ms(policy, a), next_backoff_ms(policy, b)) << "step " << i;
}

TEST(Backoff, DifferentSeedsDecorrelate) {
  // The whole point of jitter: two jobs failing together must not retry in
  // lockstep. After the (deterministic) first delay, schedules diverge.
  BackoffPolicy policy;
  BackoffState a = backoff_state_for(1);
  BackoffState b = backoff_state_for(2);
  next_backoff_ms(policy, a);
  next_backoff_ms(policy, b);
  bool diverged = false;
  for (int i = 0; i < 5 && !diverged; ++i)
    diverged = next_backoff_ms(policy, a) != next_backoff_ms(policy, b);
  EXPECT_TRUE(diverged);
}

TEST(Backoff, DelaysGrowTowardTheCap) {
  BackoffPolicy policy;
  policy.base_ms = 10.0;
  policy.cap_ms = 1e6;
  policy.multiplier = 3.0;
  BackoffState state = backoff_state_for(5);
  double max_seen = 0.0;
  for (int i = 0; i < 20; ++i) max_seen = std::max(max_seen, next_backoff_ms(policy, state));
  EXPECT_GT(max_seen, 10.0 * policy.base_ms);  // grows roughly exponentially
}

TEST(Backoff, JobHashIsStableAndSpreads) {
  EXPECT_EQ(backoff_job_hash("job-a"), backoff_job_hash("job-a"));
  std::set<std::uint64_t> hashes;
  const char* ids[] = {"a", "b", "job-1", "job-2", "job-10", ""};
  for (const char* id : ids) hashes.insert(backoff_job_hash(id));
  EXPECT_EQ(hashes.size(), 6u);
}

TEST(FakeClock, AdvancesOnlyVirtually) {
  FakeClock clock(100.0);
  EXPECT_EQ(clock.now_ms(), 100.0);
  clock.sleep_ms(40.0);
  EXPECT_EQ(clock.now_ms(), 140.0);
  clock.advance_ms(10.0);
  EXPECT_EQ(clock.now_ms(), 150.0);
  clock.sleep_ms(2.5);
  const std::vector<double> sleeps = clock.sleeps();
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], 40.0);
  EXPECT_EQ(sleeps[1], 2.5);
  EXPECT_EQ(clock.total_slept_ms(), 42.5);
}

TEST(SystemClock, IsMonotonic) {
  SystemClock& clock = SystemClock::instance();
  const double a = clock.now_ms();
  const double b = clock.now_ms();
  EXPECT_GE(b, a);
  clock.sleep_ms(0.0);  // no-op, must not block
  clock.sleep_ms(-5.0);
}

}  // namespace
}  // namespace rgleak::util
