// util::metrics: lock-free instruments under real concurrency, the child→
// parent delta protocol, and snapshot serialization. Suite names contain
// "Metrics" so scripts/tsan_check.sh can race-test them under TSan.

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace rgleak::util::metrics {
namespace {

// Unique instrument names per test: the registry is a process singleton, so
// cross-test interference is prevented by namespacing, not by reset().
std::string uniq(const char* base) {
  static std::atomic<int> n{0};
  return std::string("test.") + base + "." + std::to_string(n.fetch_add(1));
}

TEST(MetricsCounter, ConcurrentAddsAreExact) {
  Counter& c = Registry::instance().counter(uniq("counter"));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsGauge, SetAndAdd) {
  Gauge& g = Registry::instance().gauge(uniq("gauge"));
  g.set(5);
  g.add(-7);
  EXPECT_EQ(g.value(), -2);
}

TEST(MetricsHistogram, BucketIndexBoundaries) {
  // Bucket i covers [2^(i-11), 2^(i-10)); bucket 0 absorbs <2^-10,
  // non-positive, and non-finite input; the last bucket absorbs the rest.
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-3.0), 0);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::quiet_NaN()), 0);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::infinity()), 0);
  EXPECT_EQ(Histogram::bucket_index(1e-9), 0);
  EXPECT_EQ(Histogram::bucket_index(1.0 / 1024.0), 1);   // 2^-10, first edge
  EXPECT_EQ(Histogram::bucket_index(0.5), 10);
  EXPECT_EQ(Histogram::bucket_index(1.0), 11);
  EXPECT_EQ(Histogram::bucket_index(1.999), 11);
  EXPECT_EQ(Histogram::bucket_index(2.0), 12);
  EXPECT_EQ(Histogram::bucket_index(1e30), Histogram::kBuckets - 1);
}

TEST(MetricsHistogram, ConcurrentObservesAreExact) {
  Histogram& h = Registry::instance().histogram(uniq("hist"));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  // 1.5 is exactly representable and kThreads*kPerThread*1.5 stays far below
  // 2^53, so the atomic<double> fetch_add sum is exact in every add order.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.observe(t == 0 && i == 0 ? 3000.0 : 1.5);
    });
  for (std::thread& t : threads) t.join();
  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.count(), total);
  EXPECT_EQ(h.sum(), (total - 1) * 1.5 + 3000.0);
  EXPECT_EQ(h.max(), 3000.0);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(1.5)), total - 1);
  EXPECT_EQ(h.bucket(Histogram::bucket_index(3000.0)), 1u);
}

// The shape the batch layer actually produces: several pool workers hammering
// counters and the attempt histogram, a checkpoint-flusher-style thread
// observing its own latency histogram, and a watchdog-style monitor polling
// values/snapshots the whole time. Totals must come out exact.
TEST(MetricsRegistry, WorkersFlusherAndMonitorConcurrently) {
  Registry& reg = Registry::instance();
  const std::string c_name = uniq("jobs");
  const std::string h_name = uniq("attempt_ms");
  const std::string f_name = uniq("flush_ms");
  constexpr int kWorkers = 4;
  constexpr int kPerWorker = 5000;
  constexpr int kFlushes = 2000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w)
    threads.emplace_back([&reg, &c_name, &h_name] {
      // Registration races against the other threads; recording is lock-free.
      Counter& c = reg.counter(c_name);
      Histogram& h = reg.histogram(h_name);
      for (int i = 0; i < kPerWorker; ++i) {
        c.add();
        h.observe(2.0);
      }
    });
  threads.emplace_back([&reg, &f_name] {
    Histogram& f = reg.histogram(f_name);
    for (int i = 0; i < kFlushes; ++i) f.observe(0.25);
  });
  std::thread monitor([&reg, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string json = reg.snapshot_json();
      ASSERT_FALSE(json.empty());
      (void)reg.snapshot();
    }
  });

  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  monitor.join();

  EXPECT_EQ(reg.counter(c_name).value(), static_cast<std::uint64_t>(kWorkers) * kPerWorker);
  EXPECT_EQ(reg.histogram(h_name).count(), static_cast<std::uint64_t>(kWorkers) * kPerWorker);
  EXPECT_EQ(reg.histogram(h_name).sum(), kWorkers * kPerWorker * 2.0);
  EXPECT_EQ(reg.histogram(f_name).count(), static_cast<std::uint64_t>(kFlushes));
}

TEST(MetricsDelta, EncodeMergeRoundTripIsExact) {
  Registry& reg = Registry::instance();
  const std::string c_name = uniq("delta_counter");
  const std::string h_name = uniq("delta_hist");
  Counter& c = reg.counter(c_name);
  Histogram& h = reg.histogram(h_name);

  const Snapshot base = reg.snapshot();
  c.add(7);
  h.observe(0.1);     // not exactly representable — exercises the bit-exact path
  h.observe(1e-7);    // bucket 0
  h.observe(40000.0);
  const std::string delta = reg.encode_delta(base);
  ASSERT_FALSE(delta.empty());

  // Merging the delta replays the child's work on top of the current state.
  const Snapshot before = reg.snapshot();
  reg.merge_delta(delta);
  const Snapshot after = reg.snapshot();

  EXPECT_EQ(after.counters.at(c_name), before.counters.at(c_name) + 7);
  const Snapshot::Hist& hb = before.histograms.at(h_name);
  const Snapshot::Hist& ha = after.histograms.at(h_name);
  EXPECT_EQ(ha.count, hb.count + 3);
  // sum travels as hex bit patterns, so the merged sum is bit-identical to
  // adding the child's sum — no decimal round-trip error.
  EXPECT_EQ(ha.sum, hb.sum + (0.1 + 1e-7 + 40000.0));
  EXPECT_EQ(ha.max, 40000.0);
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t grew = ha.buckets[i] - hb.buckets[i];
    if (i == Histogram::bucket_index(0.1) || i == Histogram::bucket_index(1e-7) ||
        i == Histogram::bucket_index(40000.0)) {
      EXPECT_EQ(grew, 1u) << "bucket " << i;
    } else {
      EXPECT_EQ(grew, 0u) << "bucket " << i;
    }
  }
}

TEST(MetricsDelta, EmptyWhenNothingChanged) {
  Registry& reg = Registry::instance();
  (void)reg.counter(uniq("idle"));
  const Snapshot base = reg.snapshot();
  EXPECT_TRUE(reg.encode_delta(base).empty());
}

TEST(MetricsDelta, MalformedAndUnknownRecordsAreSkipped) {
  Registry& reg = Registry::instance();
  const std::string c_name = uniq("tolerant");
  // Unknown kind 'x', short record, bad number — none may throw or count;
  // the one well-formed record still lands (registering the counter).
  reg.merge_delta("x|future|1;c|;c|" + c_name + "|notanumber;c|" + c_name + "|3");
  EXPECT_EQ(reg.snapshot().counters.at(c_name), 3u);
}

TEST(MetricsSnapshot, JsonIsStrictAndContainsInstruments) {
  Registry& reg = Registry::instance();
  const std::string c_name = uniq("json_counter");
  reg.counter(c_name).add(2);
  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find('"' + c_name + "\":2"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace rgleak::util::metrics
