// Locale-independent numeric formatting (util/format.h): exact equivalence
// with C-locale printf, round-trip identity through parse_double, and the
// parse subset contract (JSON-compatible: no whitespace, '+', or hex floats).

#include "util/format.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

namespace rgleak::util {
namespace {

std::string printf_g(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string printf_f(double v, int precision) {
  char buf[512];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

TEST(Format, MatchesPrintfGeneralInCLocale) {
  // The process runs in the C locale here, so printf IS the reference.
  const double values[] = {0.0,     -0.0,   1.0,       -1.0,    3.14159265358979,
                           1e-300,  1e300,  2.5e-5,    123456789.0,
                           0.1,     1.0 / 3.0, 6.02214076e23, -271.828};
  for (double v : values) {
    for (int p : {1, 4, 9, 17}) {
      EXPECT_EQ(format_double(v, p), printf_g(v, p)) << "v=" << v << " p=" << p;
    }
  }
}

TEST(Format, MatchesPrintfFixedInCLocale) {
  const double values[] = {0.0, 1.0, -1.0, 3.14159265358979, 1234.5678, 1e-8, -0.25};
  for (double v : values) {
    for (int p : {0, 2, 4, 9}) {
      EXPECT_EQ(format_double_fixed(v, p), printf_f(v, p)) << "v=" << v << " p=" << p;
    }
  }
}

TEST(Format, NonFiniteSpellings) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(Format, RoundTripIsExactAtPrecision17) {
  // %.17g is lossless for doubles; parse_double must return the exact bits.
  const double values[] = {0.1, 1.0 / 3.0, 3.141592653589793, 1e-300, 1e300,
                           -2.2250738585072014e-308, 6.02214076e23};
  for (double v : values) {
    double back = 0.0;
    ASSERT_TRUE(parse_double(format_double(v, 17), back)) << v;
    EXPECT_EQ(back, v);
  }
}

TEST(Format, ParseAcceptsJsonNumberForms) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("0", v));
  EXPECT_EQ(v, 0.0);
  EXPECT_TRUE(parse_double("-12.5", v));
  EXPECT_EQ(v, -12.5);
  EXPECT_TRUE(parse_double("2e-3", v));
  EXPECT_EQ(v, 2e-3);
  EXPECT_TRUE(parse_double("1.25E+4", v));
  EXPECT_EQ(v, 1.25e4);
}

TEST(Format, ParseRejectsNonJsonForms) {
  double v = 0.0;
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double(" 1.5", v));   // leading whitespace
  EXPECT_FALSE(parse_double("1.5 ", v));   // trailing junk
  EXPECT_FALSE(parse_double("+1.5", v));   // explicit plus
  EXPECT_FALSE(parse_double("0x10", v));   // hex float
  EXPECT_FALSE(parse_double("1,5", v));    // decimal comma, any locale
  EXPECT_FALSE(parse_double("12.5x", v));  // partial consumption
}

TEST(Format, OutputIgnoresLcNumeric) {
  // The container typically ships only the C/POSIX locales; when a
  // comma-decimal locale is available, prove the writers ignore it. Loud
  // skip otherwise so the gap is visible in the test log, not silent.
  const char* applied = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
  if (applied == nullptr) applied = std::setlocale(LC_NUMERIC, "de_DE");
  if (applied == nullptr)
    GTEST_SKIP() << "no comma-decimal locale installed; locale hardness not exercised";
  EXPECT_EQ(format_double(3.5, 17), "3.5");
  EXPECT_EQ(format_double_fixed(3.5, 2), "3.50");
  double v = 0.0;
  EXPECT_TRUE(parse_double("3.5", v));
  EXPECT_EQ(v, 3.5);
  std::setlocale(LC_NUMERIC, "C");
}

}  // namespace
}  // namespace rgleak::util
