// The error taxonomy itself: exit-code mapping, the ParseError location
// format, catchability through every advertised base, and the JSON renderer.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/error.h"

namespace rgleak {
namespace {

TEST(ErrorTaxonomy, ExitCodesFollowTheDocumentedContract) {
  EXPECT_EQ(exit_code_for(ErrorCode::kContract), 1);
  EXPECT_EQ(exit_code_for(ErrorCode::kConfig), 2);
  EXPECT_EQ(exit_code_for(ErrorCode::kParse), 3);
  EXPECT_EQ(exit_code_for(ErrorCode::kNumerical), 4);
  EXPECT_EQ(exit_code_for(ErrorCode::kIo), 5);
  EXPECT_EQ(exit_code_for(ErrorCode::kDeadline), 6);
  EXPECT_EQ(exit_code_for(ErrorCode::kResource), 8);
}

TEST(ErrorTaxonomy, CodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kContract), "contract");
  EXPECT_STREQ(error_code_name(ErrorCode::kNumerical), "numerical");
  EXPECT_STREQ(error_code_name(ErrorCode::kParse), "parse");
  EXPECT_STREQ(error_code_name(ErrorCode::kIo), "io");
  EXPECT_STREQ(error_code_name(ErrorCode::kConfig), "config");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadline), "deadline");
  EXPECT_STREQ(error_code_name(ErrorCode::kResource), "resource");
}

TEST(ErrorTaxonomy, EveryErrorIsCatchableAsStdAndAsTaxonomy) {
  // Historical catch sites use the std bases; new ones use rgleak::Error.
  try {
    throw NumericalError("boom");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  try {
    throw ContractViolation("broken invariant");
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "broken invariant");
  }
  try {
    throw IoError("disk gone");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
    EXPECT_EQ(e.message(), "disk gone");
  }
  try {
    throw ConfigError("no such model");
  } catch (const Error& e) {
    EXPECT_EQ(exit_code_for(e.code()), 2);
  }
  try {
    throw DeadlineExceeded("mc.run: deadline exceeded");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "mc.run: deadline exceeded");
  }
  try {
    throw DeadlineExceeded("stopped");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadline);
    EXPECT_EQ(exit_code_for(e.code()), 6);
  }
  try {
    throw ResourceError("arena over budget");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "arena over budget");
  }
  try {
    throw ResourceError("arena over budget");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResource);
    EXPECT_EQ(exit_code_for(e.code()), 8);
  }
}

TEST(ErrorTaxonomy, ParseErrorFormatsLocation) {
  const ParseError e("chip.bench", 12, 7, "unknown gate function", "FOO");
  EXPECT_EQ(e.source(), "chip.bench");
  EXPECT_EQ(e.line(), 12u);
  EXPECT_EQ(e.column(), 7u);
  EXPECT_EQ(e.token(), "FOO");
  EXPECT_STREQ(e.what(), "chip.bench:12:7: unknown gate function (near 'FOO')");
  EXPECT_EQ(e.code(), ErrorCode::kParse);
}

TEST(ErrorTaxonomy, ParseErrorOmitsUnknownColumnAndToken) {
  const ParseError e("a.rgnl", 3, 0, "bad header");
  EXPECT_STREQ(e.what(), "a.rgnl:3: bad header");
}

TEST(ErrorTaxonomy, JsonReportCarriesCodeAndLocation) {
  const ParseError e("c17.bench", 4, 5, "unknown gate function", "FOO");
  // Concrete errors derive from both std::exception and Error; bind through
  // the taxonomy base as handlers do.
  const Error& err = e;
  const std::string json = error_json(err);
  EXPECT_NE(json.find("\"error\":\"parse\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"exit_code\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"source\":\"c17.bench\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"column\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"token\":\"FOO\""), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be a single line";
}

TEST(ErrorTaxonomy, JsonEscapesQuotesAndBackslashes) {
  const IoError e("cannot open \"C:\\tmp\\x\"");
  const Error& err = e;
  const std::string json = error_json(err);
  EXPECT_NE(json.find("\\\"C:\\\\tmp\\\\x\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"error\":\"io\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"exit_code\":5"), std::string::npos) << json;
}

TEST(ErrorTaxonomy, UntypedExceptionReportsAsInternal) {
  const std::runtime_error e("what happened");
  const std::string json = error_json(e);
  EXPECT_NE(json.find("\"error\":\"internal\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"exit_code\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"message\":\"what happened\""), std::string::npos) << json;
}

}  // namespace
}  // namespace rgleak
