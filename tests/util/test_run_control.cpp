// RunControl semantics: the unarmed fast path, latching, first-reason-wins,
// deadline arithmetic, and the poll/throw contract.

#include "util/run_control.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <string>
#include <thread>

namespace rgleak::util {
namespace {

TEST(RunControl, UnarmedControlNeverStops) {
  RunControl run;
  EXPECT_FALSE(run.armed());
  EXPECT_FALSE(run.should_stop());
  EXPECT_EQ(run.reason(), StopReason::kNone);
  EXPECT_TRUE(std::isinf(run.remaining_s()));
  EXPECT_NO_THROW(run.poll("test"));
}

TEST(RunControl, RequestStopLatchesCancelled) {
  RunControl run;
  run.request_stop();
  EXPECT_TRUE(run.armed());
  EXPECT_TRUE(run.should_stop());
  EXPECT_EQ(run.reason(), StopReason::kCancelled);
  EXPECT_THROW(run.poll("worker"), DeadlineExceeded);
  try {
    run.poll("worker");
  } catch (const DeadlineExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("worker"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos);
    EXPECT_EQ(exit_code_for(e.code()), 6);
  }
}

TEST(RunControl, NonPositiveBudgetStopsImmediatelyWithDeadlineReason) {
  RunControl run;
  run.arm_budget(0.0);
  EXPECT_TRUE(run.should_stop());
  EXPECT_EQ(run.reason(), StopReason::kDeadline);
  EXPECT_EQ(run.remaining_s(), 0.0);
  try {
    run.poll("estimate");
  } catch (const DeadlineExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
}

TEST(RunControl, ArmedBudgetExpires) {
  RunControl run;
  run.arm_budget(1e-4);
  EXPECT_TRUE(run.armed());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(run.should_stop());
  EXPECT_EQ(run.reason(), StopReason::kDeadline);
}

TEST(RunControl, GenerousBudgetDoesNotStop) {
  RunControl run;
  run.arm_budget(3600.0);
  EXPECT_TRUE(run.armed());
  EXPECT_FALSE(run.should_stop());
  EXPECT_GT(run.remaining_s(), 3500.0);
  EXPECT_NO_THROW(run.poll("test"));
}

TEST(RunControl, FirstReasonWins) {
  RunControl run;
  run.request_stop(StopReason::kCancelled);
  run.arm_budget(0.0);  // would latch kDeadline, but the stop came first
  EXPECT_EQ(run.reason(), StopReason::kCancelled);

  RunControl run2;
  run2.arm_budget(0.0);
  run2.request_stop(StopReason::kCancelled);
  EXPECT_EQ(run2.reason(), StopReason::kDeadline);
}

TEST(RunControl, MakeErrorNamesTheSite) {
  RunControl run;
  run.request_stop();
  const DeadlineExceeded e = run.make_error("mc.run");
  EXPECT_NE(std::string(e.what()).find("mc.run"), std::string::npos);
  EXPECT_EQ(e.code(), ErrorCode::kDeadline);
}

TEST(RunControl, PollsBeatButObserversDoNot) {
  RunControl run;
  EXPECT_EQ(run.beats(), 0u);
  EXPECT_FALSE(run.should_stop());  // every poll is a heartbeat
  EXPECT_EQ(run.beats(), 1u);
  run.poll("test");
  EXPECT_EQ(run.beats(), 2u);
  run.beat();
  EXPECT_EQ(run.beats(), 3u);
  // Watchdog-side reads must not register as the worker's progress.
  (void)run.reason();
  (void)run.armed();
  (void)run.beats();
  EXPECT_EQ(run.beats(), 3u);
}

TEST(RunControl, StalledReasonLatchesAndReportsRetryably) {
  RunControl run;
  run.request_stop(StopReason::kStalled);
  EXPECT_TRUE(run.should_stop());
  EXPECT_EQ(run.reason(), StopReason::kStalled);
  const DeadlineExceeded e = run.make_error("worker");
  EXPECT_NE(std::string(e.what()).find("stalled"), std::string::npos) << e.what();
  EXPECT_EQ(e.code(), ErrorCode::kDeadline) << "stalls classify as deadline (retryable)";
}

}  // namespace
}  // namespace rgleak::util
