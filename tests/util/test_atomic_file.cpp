// The atomic writer's durability contract: fsync-before-rename means a sync
// failure aborts the commit cleanly, while a directory-sync failure after the
// rename reports an error for a file that IS already committed.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/atomic_file.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace rgleak::util {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void write_text(const std::string& path, const std::string& text) {
  atomic_write_file(path, [&](std::ostream& os) { os << text; });
}

bool exists(const std::string& path) { return std::ifstream(path).good(); }

TEST(AtomicFile, WriteCommitsAndOverwrites) {
  const std::string path = temp_path("rgleak_atomic_ok.txt");
  std::remove(path.c_str());
  write_text(path, "v1\n");
  EXPECT_EQ(slurp(path), "v1\n");
  write_text(path, "v2\n");
  EXPECT_EQ(slurp(path), "v2\n");
  EXPECT_FALSE(exists(path + ".tmp"));  // no litter on the happy path
  std::remove(path.c_str());
}

#if !defined(_WIN32)
TEST(AtomicFile, FsyncFailureBeforeRenameAbortsCleanly) {
  const std::string path = temp_path("rgleak_atomic_fsync.txt");
  std::remove(path.c_str());
  write_text(path, "old content\n");

  const ScopedFailpoint fp("util.atomic_file.fsync", FailpointAction::kThrow, 1);
  EXPECT_THROW(write_text(path, "new content\n"), FailpointError);
  // The commit never happened: the destination still holds the old bytes and
  // the temp file was swept up by the guard.
  EXPECT_EQ(slurp(path), "old content\n");
  EXPECT_EQ(Failpoints::hits("util.atomic_file.fsync"), 1u);
  std::remove(path.c_str());
}

TEST(AtomicFile, DirectorySyncFailureReportsButTheFileIsCommitted) {
  const std::string path = temp_path("rgleak_atomic_fsyncdir.txt");
  std::remove(path.c_str());

  const ScopedFailpoint fp("util.atomic_file.fsync_dir", FailpointAction::kThrow, 1);
  EXPECT_THROW(write_text(path, "committed\n"), FailpointError);
  // The rename preceded the directory sync: callers see an error, but the
  // destination already holds the new content (the documented asymmetry).
  EXPECT_EQ(slurp(path), "committed\n");
  std::remove(path.c_str());
}
#endif

TEST(AtomicFile, CommitFailpointLeavesDestinationUntouched) {
  const std::string path = temp_path("rgleak_atomic_commit.txt");
  std::remove(path.c_str());
  write_text(path, "old\n");
  const ScopedFailpoint fp("util.atomic_file.commit", FailpointAction::kThrow, 1);
  EXPECT_THROW(write_text(path, "new\n"), FailpointError);
  EXPECT_EQ(slurp(path), "old\n");
  std::remove(path.c_str());
}

TEST(AtomicFile, EmitExceptionRemovesTheTempFile) {
  const std::string path = temp_path("rgleak_atomic_emit.txt");
  std::remove(path.c_str());
  EXPECT_THROW(atomic_write_file(path,
                                 [](std::ostream&) { throw IoError("emit failed"); }),
               IoError);
  EXPECT_FALSE(exists(path));
}

}  // namespace
}  // namespace rgleak::util
