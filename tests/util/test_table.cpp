#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/require.h"

namespace rgleak::util {
namespace {

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.row().cell("a").cell(1.5);
  t.row().cell("long-name").cell(static_cast<long long>(42));
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell("x").cell(2.0);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,2\n");
}

TEST(Table, NumericFormatting) {
  Table t({"v"});
  t.row().cell(3.14159265, 3);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "v\n3.14\n");
}

TEST(Table, PartialRowsPrintPadded) {
  Table t({"a", "b", "c"});
  t.row().cell("only");
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

TEST(Table, ContractChecks) {
  EXPECT_THROW(Table({}), ContractViolation);
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), ContractViolation);  // no row yet
  t.row().cell("1");
  EXPECT_THROW(t.cell("overflow"), ContractViolation);  // too many cells
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace rgleak::util
