#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/failpoint.h"
#include "util/run_control.h"

namespace rgleak::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, IndexedOutputsAreDeterministic) {
  // The documented usage pattern: write out[i], reduce in index order. The
  // reduction must not depend on the pool size.
  const std::size_t n = 4096;
  std::vector<double> expected(n);
  for (std::size_t i = 0; i < n; ++i) expected[i] = 1.0 / static_cast<double>(i + 1);
  double serial_sum = 0.0;
  for (double v : expected) serial_sum += v;

  for (const std::size_t threads : {1u, 2u, 7u}) {
    ThreadPool pool(threads);
    std::vector<double> out(n, 0.0);
    pool.parallel_for(n, [&](std::size_t i) { out[i] = 1.0 / static_cast<double>(i + 1); });
    double sum = 0.0;
    for (double v : out) sum += v;
    EXPECT_DOUBLE_EQ(sum, serial_sum) << threads;
  }
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int job = 0; job < 200; ++job) {
    std::atomic<int> sum{0};
    pool.parallel_for(17, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives the failed job.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ReentrantCallsRunInline) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(3, [&](std::size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 12);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, BackToBackJobsWithShrinkingCounts) {
  // Regression for a straggler race: parallel_for must not return while a
  // worker is still inside the previous job's claim loop, or a back-to-back
  // call with a smaller count would hand the straggler out-of-bounds indices
  // (and a stale fn). Alternating big/small jobs makes sanitizers catch it.
  ThreadPool pool(4);
  const std::size_t big = 512, small = 2;
  for (int round = 0; round < 500; ++round) {
    std::vector<std::atomic<int>> a(big);
    pool.parallel_for(big, [&](std::size_t i) { a[i].fetch_add(1); });
    std::vector<std::atomic<int>> b(small);
    pool.parallel_for(small, [&](std::size_t i) { b[i].fetch_add(1); });
    for (const auto& h : a) ASSERT_EQ(h.load(), 1);
    for (const auto& h : b) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, FailpointInTaskPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  {
    const ScopedFailpoint fp("thread_pool.task", FailpointAction::kThrow, 1);
    EXPECT_THROW(pool.parallel_for(64, [&](std::size_t) {}), FailpointError);
    EXPECT_GE(Failpoints::hits("thread_pool.task"), 1u);
  }
  std::atomic<int> count{0};
  pool.parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, FailpointFiresOnSerialInlinePathToo) {
  ThreadPool pool(1);
  const ScopedFailpoint fp("thread_pool.task", FailpointAction::kThrow, 1);
  EXPECT_THROW(pool.parallel_for(4, [&](std::size_t) {}), FailpointError);
  pool.parallel_for(4, [&](std::size_t) {});  // count exhausted: clean
}

TEST(ThreadPool, StopCancelsInFlightJobAndPoolSurvives) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallel_for(100000,
                                 [&](std::size_t i) {
                                   if (i == 0) pool.stop();
                                   executed.fetch_add(1);
                                 }),
               DeadlineExceeded);
  // Drain semantics: every claimed index completed, but far from all of them.
  EXPECT_GE(executed.load(), 1);
  EXPECT_LT(executed.load(), 100000);
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, StopCancelsSerialInlineJobToo) {
  ThreadPool pool(1);
  int executed = 0;
  EXPECT_THROW(pool.parallel_for(1000,
                                 [&](std::size_t i) {
                                   if (i == 2) pool.stop();
                                   ++executed;
                                 }),
               DeadlineExceeded);
  EXPECT_EQ(executed, 3);  // indices 0..2 ran; the drain check stopped 3
  pool.parallel_for(4, [&](std::size_t) {});
}

TEST(ThreadPool, StoppedRunControlPreventsAnyWork) {
  ThreadPool pool(2);
  RunControl run;
  run.request_stop();
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.parallel_for(64, [&](std::size_t) { executed.fetch_add(1); }, &run),
      DeadlineExceeded);
  EXPECT_EQ(executed.load(), 0);
}

TEST(ThreadPool, CompletedJobWinsOverLateStop) {
  // A stop that lands after every index has been claimed and executed must
  // not throw away the finished result.
  for (const std::size_t threads : {1u, 3u}) {
    ThreadPool pool(threads);
    RunControl run;
    std::atomic<int> executed{0};
    pool.parallel_for(1, [&](std::size_t) {
      executed.fetch_add(1);
      run.request_stop();  // job is complete by the time the pool re-checks
    }, &run);
    EXPECT_EQ(executed.load(), 1);
  }
}

TEST(ThreadPool, RunControlDeadlineCancelsJob) {
  ThreadPool pool(3);
  RunControl run;
  run.arm_budget(1e-4);
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(
        1000000,
        [&](std::size_t) {
          executed.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        },
        &run);
    FAIL() << "deadline did not fire";
  } catch (const DeadlineExceeded& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadline);
  }
  EXPECT_LT(executed.load(), 1000000);
}

TEST(ThreadPool, SharedKeyedPoolIsCachedPerThreadCount) {
  ThreadPool& a = ThreadPool::shared(3);
  EXPECT_EQ(&a, &ThreadPool::shared(3));
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(&ThreadPool::shared(0), &ThreadPool::shared());
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

}  // namespace
}  // namespace rgleak::util
