// MemoryBudget accounting, reservation RAII, size parsing, and the
// process-wide allocation counters (util_tests links rgleak_alloc_count).

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util/alloc_count.h"
#include "util/error.h"
#include "util/memory.h"

namespace rgleak::util {
namespace {

TEST(MemoryBudget, UnlimitedByDefaultAndPureBookkeeping) {
  MemoryBudget b;
  EXPECT_EQ(b.limit(), 0u);
  EXPECT_EQ(b.reserved(), 0u);
  b.reserve(1ull << 40, "test.huge");  // no limit: never throws
  EXPECT_EQ(b.reserved(), 1ull << 40);
  EXPECT_EQ(b.peak(), 1ull << 40);
  b.release(1ull << 40);
  EXPECT_EQ(b.reserved(), 0u);
  EXPECT_EQ(b.peak(), 1ull << 40) << "peak is a high-water mark";
}

TEST(MemoryBudget, LimitEnforcedWithTypedError) {
  MemoryBudget b;
  b.set_limit(1000);
  b.reserve(600, "test.a");
  EXPECT_EQ(b.headroom(), 400u);
  try {
    b.reserve(500, "test.b");
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResource);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("test.b"), std::string::npos) << msg;
  }
  EXPECT_EQ(b.reserved(), 600u) << "failed reserve must not charge";
  b.reserve(400, "test.c");  // exactly fills the budget
  EXPECT_EQ(b.headroom(), 0u);
  b.release(1000);
}

TEST(MemoryBudget, TryReserveReturnsFalseInsteadOfThrowing) {
  MemoryBudget b;
  b.set_limit(100);
  EXPECT_TRUE(b.try_reserve(80, "test"));
  EXPECT_FALSE(b.try_reserve(21, "test"));
  EXPECT_EQ(b.reserved(), 80u);
  b.release(80);
}

TEST(MemoryBudget, OverReleaseClampsToZero) {
  MemoryBudget b;
  b.reserve(10, "test");
  b.release(1000);  // caller bug, but the gauge must not wrap
  EXPECT_EQ(b.reserved(), 0u);
}

TEST(MemoryBudget, ResetPeakRebasesToCurrentReserved) {
  MemoryBudget b;
  b.reserve(500, "test");
  b.release(400);
  EXPECT_EQ(b.peak(), 500u);
  b.reset_peak();
  EXPECT_EQ(b.peak(), 100u);
  b.release(100);
}

TEST(MemoryBudget, ProcessSingletonIsShared) {
  MemoryBudget& a = MemoryBudget::process();
  MemoryBudget& b = MemoryBudget::process();
  EXPECT_EQ(&a, &b);
}

TEST(MemoryBudget, ConcurrentReserveReleaseBalances) {
  MemoryBudget b;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&b] {
      for (int i = 0; i < kIters; ++i) {
        b.reserve(64, "test.concurrent");
        b.release(64);
      }
    });
  for (auto& t : pool) t.join();
  EXPECT_EQ(b.reserved(), 0u);
  EXPECT_GE(b.peak(), 64u);
  EXPECT_LE(b.peak(), 64u * kThreads);
}

TEST(MemoryBudget, ConcurrentTryReserveNeverOvershootsLimit) {
  MemoryBudget b;
  b.set_limit(256);  // room for exactly 4 concurrent 64-byte charges
  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&b] {
      for (int i = 0; i < 500; ++i) {
        if (b.try_reserve(64, "test.race")) b.release(64);
      }
    });
  for (auto& t : pool) t.join();
  EXPECT_EQ(b.reserved(), 0u);
  EXPECT_LE(b.peak(), 256u) << "CAS admission must never overshoot the limit";
}

TEST(MemoryReservation, RaiiReleasesOnScopeExit) {
  MemoryBudget b;
  {
    MemoryReservation r(123, "test.raii", &b);
    EXPECT_EQ(b.reserved(), 123u);
    EXPECT_EQ(r.bytes(), 123u);
  }
  EXPECT_EQ(b.reserved(), 0u);
}

TEST(MemoryReservation, CopyReReservesAndMoveTransfers) {
  MemoryBudget b;
  MemoryReservation r(100, "test.copy", &b);
  {
    MemoryReservation clone(r);  // per-worker clones each carry a charge
    EXPECT_EQ(b.reserved(), 200u);
  }
  EXPECT_EQ(b.reserved(), 100u);
  MemoryReservation moved(std::move(r));
  EXPECT_EQ(b.reserved(), 100u) << "move must not double-charge";
  moved.release();
  moved.release();  // idempotent
  EXPECT_EQ(b.reserved(), 0u);
}

TEST(MemoryReservation, CopyThatDoesNotFitThrowsAndLeavesTargetIntact) {
  MemoryBudget b;
  b.set_limit(150);
  MemoryReservation r(100, "test.nofit", &b);
  EXPECT_THROW(MemoryReservation{r}, ResourceError);
  EXPECT_EQ(b.reserved(), 100u);
}

TEST(ParseMemorySize, AcceptsBytesAndSuffixes) {
  EXPECT_EQ(parse_memory_size("1048576"), 1048576u);
  EXPECT_EQ(parse_memory_size("512k"), 512u * 1024);
  EXPECT_EQ(parse_memory_size("512K"), 512u * 1024);
  EXPECT_EQ(parse_memory_size("3m"), 3u * 1024 * 1024);
  EXPECT_EQ(parse_memory_size("2g"), 2ull * 1024 * 1024 * 1024);
  EXPECT_EQ(parse_memory_size("16mb"), 16u * 1024 * 1024);
  EXPECT_EQ(parse_memory_size("0"), 0u);
}

TEST(ParseMemorySize, RejectsGarbage) {
  EXPECT_THROW(parse_memory_size(""), ConfigError);
  EXPECT_THROW(parse_memory_size("abc"), ConfigError);
  EXPECT_THROW(parse_memory_size("-5m"), ConfigError);
  EXPECT_THROW(parse_memory_size("12q"), ConfigError);
  EXPECT_THROW(parse_memory_size("1m1"), ConfigError);
  EXPECT_THROW(parse_memory_size("999999999999g"), ConfigError);
}

TEST(DetectMemoryLimit, ReturnsWithoutCrashing) {
  // The value depends on the host (cgroup limits, RLIMIT_AS); only the
  // contract "0 = unlimited, otherwise a positive ceiling" is portable.
  const std::uint64_t limit = detect_memory_limit();
  if (limit != 0) EXPECT_GT(limit, 1u << 20) << "a sub-MiB ceiling is surely misdetected";
}

TEST(AllocCount, CountersAreMonotonicAndSeeHeapTraffic) {
  const std::uint64_t count0 = allocation_count();
  const std::uint64_t bytes0 = allocated_bytes();
  {
    std::vector<double> v(4096);
    EXPECT_GT(v.size(), 0u);
  }
  EXPECT_GT(allocation_count(), count0);
  EXPECT_GE(allocated_bytes(), bytes0 + 4096 * sizeof(double));
}

}  // namespace
}  // namespace rgleak::util
