// The failpoint registry: disabled by default, arm/fire/count semantics, NaN
// corruption, delays, and RAII disarming.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "util/failpoint.h"

namespace rgleak::util {
namespace {

double probe(double v) { return RGLEAK_FAILPOINT_DOUBLE("test.site.double", v); }
void touch() { RGLEAK_FAILPOINT("test.site.plain"); }

TEST(Failpoint, DisarmedSitesAreFree) {
  Failpoints::disarm_all();
  EXPECT_FALSE(Failpoints::any_armed());
  touch();                        // must be a no-op
  EXPECT_EQ(probe(3.5), 3.5);     // must pass the value through
  EXPECT_EQ(Failpoints::hits("test.site.plain"), 0u);
}

TEST(Failpoint, ThrowFiresCountTimesThenStops) {
  Failpoints::arm("test.site.plain", FailpointAction::kThrow, 2);
  EXPECT_TRUE(Failpoints::any_armed());
  EXPECT_THROW(touch(), FailpointError);
  EXPECT_THROW(touch(), FailpointError);
  touch();  // budget exhausted: silent
  EXPECT_EQ(Failpoints::hits("test.site.plain"), 2u);
  Failpoints::disarm("test.site.plain");
  EXPECT_FALSE(Failpoints::any_armed());
}

TEST(Failpoint, ErrorNamesTheSite) {
  Failpoints::arm("test.site.plain", FailpointAction::kThrow, 1);
  try {
    touch();
    FAIL() << "expected FailpointError";
  } catch (const FailpointError& e) {
    EXPECT_EQ(e.site(), "test.site.plain");
    EXPECT_NE(std::string(e.what()).find("test.site.plain"), std::string::npos);
  }
  Failpoints::disarm("test.site.plain");
}

TEST(Failpoint, NanCorruptsDoubleSitesOnly) {
  Failpoints::arm("test.site.double", FailpointAction::kNan, 1);
  EXPECT_TRUE(std::isnan(probe(1.0)));
  EXPECT_EQ(probe(2.0), 2.0);  // count exhausted
  // kNan on a plain site is a harmless no-op (there is no value to corrupt).
  Failpoints::arm("test.site.plain", FailpointAction::kNan);
  touch();
  EXPECT_GE(Failpoints::hits("test.site.plain"), 1u);
  Failpoints::disarm_all();
}

TEST(Failpoint, AllocThrowsBadAllocOnBothSiteKinds) {
  Failpoints::arm("test.site.plain", FailpointAction::kAlloc, 1);
  EXPECT_THROW(touch(), std::bad_alloc);
  touch();  // count exhausted
  Failpoints::arm("test.site.double", FailpointAction::kAlloc, 1);
  EXPECT_THROW(probe(1.0), std::bad_alloc);
  EXPECT_EQ(probe(2.0), 2.0);
  Failpoints::disarm_all();
}

TEST(Failpoint, DelayReturnsAfterSleeping) {
  Failpoints::arm("test.site.plain", FailpointAction::kDelay, 1, 20);
  const auto t0 = std::chrono::steady_clock::now();
  touch();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 15);
  Failpoints::disarm("test.site.plain");
}

TEST(Failpoint, RearmingResetsTheHitCounter) {
  Failpoints::arm("test.site.plain", FailpointAction::kThrow, 1);
  EXPECT_THROW(touch(), FailpointError);
  EXPECT_EQ(Failpoints::hits("test.site.plain"), 1u);
  Failpoints::arm("test.site.plain", FailpointAction::kThrow, 1);
  EXPECT_EQ(Failpoints::hits("test.site.plain"), 0u);
  EXPECT_THROW(touch(), FailpointError);
  Failpoints::disarm("test.site.plain");
}

TEST(Failpoint, ScopedFailpointDisarmsOnExit) {
  {
    const ScopedFailpoint fp("test.site.plain", FailpointAction::kThrow, SIZE_MAX);
    EXPECT_TRUE(Failpoints::any_armed());
    EXPECT_THROW(touch(), FailpointError);
  }
  EXPECT_FALSE(Failpoints::any_armed());
  touch();  // disarmed again
}

TEST(Failpoint, DisarmAllClearsEverySite) {
  Failpoints::arm("test.site.plain", FailpointAction::kThrow);
  Failpoints::arm("test.site.double", FailpointAction::kNan);
  Failpoints::disarm_all();
  EXPECT_FALSE(Failpoints::any_armed());
  touch();
  EXPECT_EQ(probe(4.0), 4.0);
}

}  // namespace
}  // namespace rgleak::util
