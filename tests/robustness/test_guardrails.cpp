// Numeric guardrails: the math and sampling layers must refuse non-PSD
// correlation structures, overflowing models, and ill-conditioned fits with
// NumericalErrors that carry enough diagnostics to act on — not NaNs, infs,
// or bare asserts.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "../test_util.h"
#include "math/gaussian_moments.h"
#include "math/linalg.h"
#include "math/mgf.h"
#include "math/polyfit.h"
#include "process/field_sampler.h"
#include "util/error.h"

namespace rgleak {
namespace {

using rgleak::testing::test_process;

// An oscillating "correlation" that is not positive semi-definite over 2-D
// site sets: rho(0) = 1 but nearby sites are strongly anti-correlated, which
// no valid isotropic kernel allows at this density.
class BogusCorrelation final : public process::SpatialCorrelation {
 public:
  double operator()(double d) const override { return d == 0.0 ? 1.0 : -0.9; }
  double range_nm() const override { return 1e6; }
  std::string name() const override { return "bogus"; }
};

TEST(Guardrails, CholeskyReportsPivotDiagnostics) {
  math::Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = a(1, 0) = 2.0;  // determinant -3: indefinite
  a(1, 1) = 1.0;
  try {
    (void)math::cholesky(a);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pivot 1"), std::string::npos) << what;
    EXPECT_NE(what.find("2x2"), std::string::npos) << what;
  }
}

TEST(Guardrails, LeastSquaresReportsCondition) {
  math::Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1e-9;
  math::LeastSquaresInfo info;
  (void)math::solve_least_squares(a, {1.0, 1.0}, &info);
  EXPECT_NEAR(info.condition, 1e9, 1e3);
}

TEST(Guardrails, PolyfitReportsCondition) {
  // A healthy centered fit is well conditioned...
  math::PolyfitInfo good;
  (void)math::polyfit({-1.0, 0.0, 1.0, 2.0}, {1.0, 0.0, 1.0, 4.0}, 2, &good);
  EXPECT_GE(good.condition, 1.0);
  EXPECT_LT(good.condition, 1e3);
  // ...while clustered abscissae far from zero are numerically hopeless.
  math::PolyfitInfo bad;
  (void)math::polyfit({0.0, 1e-4, 2e-4}, {1.0, 1.1, 1.2}, 2, &bad);
  EXPECT_GT(bad.condition, 1e6);
}

TEST(Guardrails, LogQuadraticModelRefusesOverflow) {
  const math::LogQuadraticModel m{1.0, 1.0, 1.0};
  EXPECT_GT(m(10.0), 0.0);
  try {
    (void)m(1000.0);  // exponent ~1e6
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("overflows"), std::string::npos) << what;
    EXPECT_NE(what.find("L=1000"), std::string::npos) << what;
  }
}

TEST(Guardrails, LogQuadraticModelUnderflowsToZero) {
  const math::LogQuadraticModel m{1.0, -10.0, 0.0};
  EXPECT_EQ(m(100.0), 0.0);  // exp(-1000): physically no leakage
}

TEST(Guardrails, ExpectationRefusesOverflow) {
  // log-expectation ~ 800: representable in log space only.
  EXPECT_THROW((void)math::expectation_exp_quadratic_1d(800.0, 0.0, 1.0, 1e-6), NumericalError);
  // The classical divergence guard still fires first when 1 - 2c*var <= 0.
  EXPECT_THROW((void)math::expectation_exp_quadratic_1d(0.0, 1.0, 0.0, 1.0), NumericalError);
}

TEST(Guardrails, DenseSamplerReportsGershgorinBound) {
  const BogusCorrelation rho;
  std::vector<process::DenseFieldSampler::Site> sites;
  for (int i = 0; i < 4; ++i)
    sites.push_back({static_cast<double>(i) * 100.0, 0.0});
  try {
    const process::DenseFieldSampler sampler(std::move(sites), rho, 1.0);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'bogus'"), std::string::npos) << what;
    EXPECT_NE(what.find("Gershgorin"), std::string::npos) << what;
    EXPECT_NE(what.find("4 sites"), std::string::npos) << what;
  }
}

TEST(Guardrails, GridSamplerRejectsNonPsdKernel) {
  const BogusCorrelation rho;
  try {
    const process::GridFieldSampler sampler(8, 8, 100.0, 100.0, rho, 1.0);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("not positive semi-definite"), std::string::npos) << what;
    EXPECT_NE(what.find("'bogus'"), std::string::npos) << what;
  }
}

TEST(Guardrails, GridSamplerStillAcceptsLinearKernel) {
  // The linear taper is known to clamp a few percent of embedding eigenvalues;
  // the validity threshold must not reject it.
  const process::LinearCorrelation rho(2.0e4);
  process::GridFieldSampler sampler(16, 16, 1000.0, 1000.0, rho, 1.0);
  EXPECT_LT(sampler.clamped_eigenvalue_fraction(), 0.25);
  math::Rng rng(7);
  const std::vector<double> field = sampler.sample(rng);
  for (double v : field) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace rgleak
