// Malformed-checkpoint corpus: every corrupted rgmcckpt-v1 file must be
// refused with a typed, located ParseError naming the file — never a crash, a
// garbage resume, or an untyped exception — and a checkpoint that parses but
// describes a different run must be refused with ConfigError on --resume.
// RGLEAK_MC_CORPUS_DIR is injected by CMake and points at tests/mc/corpus.

#include <gtest/gtest.h>

#include <string>

#include "../test_util.h"
#include "mc/checkpoint.h"
#include "mc/full_chip_mc.h"
#include "netlist/random_circuit.h"
#include "placement/placement.h"
#include "util/error.h"

namespace rgleak::mc {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;

std::string corpus(const char* file) {
  return std::string(RGLEAK_MC_CORPUS_DIR) + "/" + file;
}

struct CorpusCase {
  const char* file;
  const char* needle;  // must appear in what()
};

const CorpusCase kMalformed[] = {
    {"truncated.ckpt", "unexpected end of checkpoint"},
    {"bad_magic.ckpt", "not a checkpoint"},
    {"bad_hex.ckpt", "expected a hex word"},
    {"dup_worker.ckpt", "worker records out of order"},
    // Integrity-trailer corpus: a valid file whose trailer was bit-flipped,
    // and a file torn above a trailer that no longer matches its payload.
    {"crc_mismatch.ckpt", "checksum mismatch"},
    {"crc_truncated.ckpt", "checksum mismatch"},
};

TEST(CheckpointCorpus, EveryMalformedFileFailsWithLocatedParseError) {
  for (const CorpusCase& c : kMalformed) {
    const std::string path = corpus(c.file);
    try {
      (void)load_mc_checkpoint(path);
      ADD_FAILURE() << c.file << ": expected ParseError, load succeeded";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.source(), path) << c.file;
      const std::string what = e.what();
      EXPECT_NE(what.find(c.needle), std::string::npos) << c.file << ": " << what;
    } catch (const std::exception& e) {
      ADD_FAILURE() << c.file << ": wrong exception type: " << e.what();
    }
  }
}

TEST(CheckpointCorpus, IdentityMismatchIsRefusedOnResume) {
  // The file itself is well-formed; it just describes a 9999-gate run. The
  // engine must refuse to resume a 16-gate run from it, with ConfigError.
  netlist::UsageHistogram usage;
  usage.alphas.assign(mini_library().size(), 0.0);
  usage.alphas[0] = 0.6;
  usage.alphas[1] = 0.4;
  math::Rng gen(41);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), usage, 16, gen);
  placement::Floorplan fp;
  fp.rows = 4;
  fp.cols = 4;
  const placement::Placement pl(&nl, fp);

  FullChipMcOptions opts;
  opts.trials = 24;
  opts.seed = 99;
  opts.threads = 1;
  opts.resample_states_per_trial = true;
  opts.resume_path = corpus("identity_mismatch.ckpt");
  FullChipMonteCarlo engine(pl, mini_chars_analytic(), opts);
  try {
    (void)engine.run();
    ADD_FAILURE() << "expected ConfigError, resume succeeded";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("gate count"), std::string::npos) << e.what();
  }
}

TEST(CheckpointCorpus, IdentityMismatchFileItselfParses) {
  // Guards the corpus: if the "valid but wrong identity" file rots into a
  // parse failure, the mismatch test above would pass for the wrong reason.
  const McCheckpoint ckpt = load_mc_checkpoint(corpus("identity_mismatch.ckpt"));
  EXPECT_EQ(ckpt.gate_count, 9999u);
  EXPECT_EQ(ckpt.workers.size(), 1u);
}

}  // namespace
}  // namespace rgleak::mc
