// Process-isolation soak: a batch of 100 jobs under a randomized (but
// deterministically seeded) crash matrix — aborts, segfaults, silent exits,
// allocation failures, foreign throws, and hard hangs — all executed in
// sandboxed children via ExecIsolation::kProcess. The contract under fire:
// the supervisor NEVER dies with a child, every job ends as a structured
// journal record with the right error class, and a batch interrupted
// mid-flight resumes from its journal to the same terminal records as an
// uninterrupted run. The *Isolate* filter runs under TSan (die_after_fork=0)
// via scripts/tsan_check.sh and under ASan (handle_segv=0:handle_abort=0)
// via scripts/asan_check.sh.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/batch_runner.h"
#include "service/journal.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/run_control.h"

namespace rgleak::service {
namespace {

using util::RunControl;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

class FnExecutor : public Executor {
 public:
  using Fn = std::function<JobOutput(const JobSpec&, const util::RunControl*, int)>;
  explicit FnExecutor(Fn fn) : fn_(std::move(fn)) {}
  JobOutput execute(const JobSpec& job, const util::RunControl* watchdog, int degrade) override {
    return fn_(job, watchdog, degrade);
  }

 private:
  Fn fn_;
};

// The synthetic job body every soak child runs: beats (so the stall monitor
// sees cross-process progress), walks through the failpoint site armed from
// the job's "failpoint" parameter, and returns a result derived only from the
// job id — deterministic, so resumed and uninterrupted runs must agree.
JobOutput soak_execute(const JobSpec& job, const util::RunControl* wd) {
  for (int i = 0; i < 4; ++i) wd->beat();
  RGLEAK_FAILPOINT("soak.exec.site");
  JobOutput out;
  out.mean_na = 100.0 + static_cast<double>(std::hash<std::string>{}(job.id) % 1000);
  out.sigma_na = out.mean_na / 64.0;
  out.method = "synthetic";
  return out;
}

// What we injected into a job, so assertions can check the matching outcome.
enum class Fate { kClean, kAbort, kSegv, kExitForeign, kExitParse, kAlloc, kThrow, kHang };

struct SoakJob {
  JobSpec spec;
  Fate fate;
};

// 100 jobs, ~half clean, the rest spread across every crash/failure mode the
// supervisor must contain. Deterministically seeded: the same matrix every
// run, every platform.
std::vector<SoakJob> crash_matrix_manifest() {
  std::mt19937 rng(20260808u);
  // The first eight rolls are pinned, one per fate, so every fate is
  // guaranteed in the matrix no matter how the remaining 92 rolls land.
  const int pinned[] = {0, 50, 65, 78, 84, 89, 94, 99};
  std::vector<SoakJob> jobs;
  for (int i = 0; i < 100; ++i) {
    SoakJob j;
    j.spec.id = "soak-" + std::to_string(i);
    j.spec.kind = "synthetic";
    const int roll = i < 8 ? pinned[i] : static_cast<int>(rng() % 100);
    if (roll < 45) {
      j.fate = Fate::kClean;
    } else if (roll < 60) {
      j.fate = Fate::kAbort;
      j.spec.params["failpoint"] = "soak.exec.site:abort";
    } else if (roll < 75) {
      j.fate = Fate::kSegv;
      j.spec.params["failpoint"] = "soak.exec.site:segv";
    } else if (roll < 82) {
      j.fate = Fate::kExitForeign;  // vanishes with a meaningless exit code
      j.spec.params["failpoint"] = "soak.exec.site:exit:42";
    } else if (roll < 87) {
      j.fate = Fate::kExitParse;  // vanishes with the documented parse exit
      j.spec.params["failpoint"] = "soak.exec.site:exit:3";
    } else if (roll < 92) {
      j.fate = Fate::kAlloc;  // std::bad_alloc: foreign, assumed transient
      j.spec.params["failpoint"] = "soak.exec.site:alloc";
    } else if (roll < 98) {
      j.fate = Fate::kThrow;  // FailpointError: foreign, assumed transient
      j.spec.params["failpoint"] = "soak.exec.site:throw";
    } else {
      j.fate = Fate::kHang;  // wedges until the stall watchdog escalates
      j.spec.params["failpoint"] = "soak.exec.site:delay:1:30000";
    }
    jobs.push_back(std::move(j));
  }
  return jobs;
}

BatchOptions isolate_options() {
  BatchOptions opts;
  opts.isolate = ExecIsolation::kProcess;
  opts.isolate_grace_s = 0.3;  // hangs are signal-blind; escalate quickly
  opts.workers = 4;
  opts.queue_depth = 8;
  opts.shed_policy = ShedPolicy::kBlock;  // the soak measures containment
  opts.retry.max_attempts = 2;
  opts.retry.backoff.base_ms = 1.0;
  opts.retry.backoff.cap_ms = 5.0;
  opts.stall_timeout_s = 0.5;  // must see cross-process beats, catch hangs
  return opts;
}

TEST(ProcessIsolationSoakIsolate, RandomizedCrashMatrixNeverKillsTheSupervisor) {
  const std::vector<SoakJob> matrix = crash_matrix_manifest();
  std::vector<JobSpec> jobs;
  for (const SoakJob& j : matrix) jobs.push_back(j.spec);

  FnExecutor exec([](const JobSpec& job, const util::RunControl* wd, int) {
    return soak_execute(job, wd);
  });
  Journal journal = Journal::open("");
  const BatchSummary s = run_batch(jobs, exec, journal, isolate_options());

  // Reaching this line IS the headline assertion: 50+ child deaths by signal
  // and the supervisor process is still here. Now the bookkeeping.
  EXPECT_EQ(s.total, 100u);
  EXPECT_EQ(s.accounted(), 100u);
  EXPECT_EQ(s.interrupted, 0u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_FALSE(s.stopped);
  EXPECT_GT(s.crashes, 0u);

  const auto records = journal.records();
  EXPECT_EQ(records.size(), 100u);
  for (const SoakJob& j : matrix) {
    const auto it = records.find(j.spec.id);
    ASSERT_NE(it, records.end()) << j.spec.id << " has no journal record";
    const JobRecord& rec = it->second;
    switch (j.fate) {
      case Fate::kClean:
        EXPECT_EQ(rec.status, JobStatus::kSucceeded) << j.spec.id << ": " << rec.error;
        EXPECT_EQ(rec.method, "synthetic") << j.spec.id;
        EXPECT_GT(rec.beats, 0u) << j.spec.id << ": child heartbeats not journaled";
        break;
      case Fate::kAbort:
        EXPECT_EQ(rec.status, JobStatus::kFailed) << j.spec.id;
        EXPECT_NE(rec.error.find("\"error\":\"crash\""), std::string::npos)
            << j.spec.id << ": " << rec.error;
        EXPECT_NE(rec.error.find("SIGABRT"), std::string::npos) << j.spec.id << ": " << rec.error;
        EXPECT_EQ(rec.attempts, 2) << j.spec.id << ": crash cap is one retry";
        break;
      case Fate::kSegv:
        EXPECT_EQ(rec.status, JobStatus::kFailed) << j.spec.id;
        EXPECT_NE(rec.error.find("\"error\":\"crash\""), std::string::npos)
            << j.spec.id << ": " << rec.error;
        EXPECT_NE(rec.error.find("SIGSEGV"), std::string::npos) << j.spec.id << ": " << rec.error;
        EXPECT_EQ(rec.attempts, 2) << j.spec.id << ": crash cap is one retry";
        break;
      case Fate::kExitForeign:
        EXPECT_EQ(rec.status, JobStatus::kFailed) << j.spec.id;
        EXPECT_NE(rec.error.find("\"error\":\"crash\""), std::string::npos)
            << j.spec.id << ": " << rec.error;
        break;
      case Fate::kExitParse:
        // Exit 3 reconstructs ParseError — permanent, exactly one attempt.
        EXPECT_EQ(rec.status, JobStatus::kFailed) << j.spec.id;
        EXPECT_NE(rec.error.find("\"error\":\"parse\""), std::string::npos)
            << j.spec.id << ": " << rec.error;
        EXPECT_EQ(rec.attempts, 1) << j.spec.id << ": parse errors must not retry";
        break;
      case Fate::kAlloc:
      case Fate::kThrow:
        // Foreign child exceptions: assumed transient, burn the full budget.
        EXPECT_EQ(rec.status, JobStatus::kFailed) << j.spec.id;
        EXPECT_NE(rec.error.find("\"error\":\"internal\""), std::string::npos)
            << j.spec.id << ": " << rec.error;
        EXPECT_EQ(rec.attempts, 2) << j.spec.id;
        break;
      case Fate::kHang:
        // The stall watchdog cancels the wedged child across the process
        // boundary; stalls are retryable, and the retry wedges again.
        EXPECT_EQ(rec.status, JobStatus::kFailed) << j.spec.id;
        EXPECT_NE(rec.error.find("\"error\":\"deadline\""), std::string::npos)
            << j.spec.id << ": " << rec.error;
        break;
    }
    if (rec.status == JobStatus::kFailed)
      EXPECT_NE(rec.error.find("\"error\":"), std::string::npos)
          << j.spec.id << ": unstructured failure '" << rec.error << "'";
  }

  // The crash injections never fired in the supervisor's own registry.
  EXPECT_EQ(util::Failpoints::hits("soak.exec.site"), 0u);
  EXPECT_FALSE(util::Failpoints::any_armed());
}

TEST(ProcessIsolationSoakIsolate, AcceptanceEightJobsWithTwoCrashers) {
  // The PR acceptance scenario: 8 jobs, job 2 segfaults, job 5 aborts; the
  // batch completes partially (exit 7 semantics at the CLI), both crashes are
  // journaled as structured kCrash records naming their signal, and the
  // crashers were retried once each in a fresh child.
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i) {
    JobSpec j;
    j.id = "job-" + std::to_string(i);
    j.kind = "synthetic";
    if (i == 2) j.params["failpoint"] = "soak.exec.site:segv";
    if (i == 5) j.params["failpoint"] = "soak.exec.site:abort";
    jobs.push_back(std::move(j));
  }
  FnExecutor exec([](const JobSpec& job, const util::RunControl* wd, int) {
    return soak_execute(job, wd);
  });
  const std::string journal_path = temp_path("rgleak_acceptance.journal");
  std::remove(journal_path.c_str());
  BatchOptions opts = isolate_options();
  opts.retry.max_attempts = 3;  // the crash cap must bind first
  BatchSummary s;
  {
    Journal journal = Journal::open(journal_path);
    s = run_batch(jobs, exec, journal, opts);
  }

  EXPECT_EQ(s.succeeded, 6u);
  EXPECT_EQ(s.failed, 2u);
  EXPECT_EQ(s.crashes, 4u) << "two crashers x (initial attempt + one retry)";
  EXPECT_TRUE(s.failed > 0 && s.succeeded > 0) << "partial completion is the exit-7 case";

  const Journal reopened = Journal::open(journal_path);
  const auto records = reopened.records();
  ASSERT_EQ(records.size(), 8u);
  EXPECT_NE(records.at("job-2").error.find("SIGSEGV"), std::string::npos)
      << records.at("job-2").error;
  EXPECT_NE(records.at("job-5").error.find("SIGABRT"), std::string::npos)
      << records.at("job-5").error;
  for (const char* id : {"job-2", "job-5"}) {
    const JobRecord& rec = records.at(id);
    EXPECT_EQ(rec.status, JobStatus::kFailed) << id;
    EXPECT_EQ(rec.attempts, 2) << id;
    EXPECT_NE(rec.error.find("\"error\":\"crash\""), std::string::npos) << id << ": " << rec.error;
  }
  for (int i : {0, 1, 3, 4, 6, 7})
    EXPECT_EQ(records.at("job-" + std::to_string(i)).status, JobStatus::kSucceeded);
  std::remove(journal_path.c_str());
  std::remove((journal_path + ".lock").c_str());
}

TEST(ProcessIsolationSoakIsolate, InterruptedBatchResumesToTheSameTerminalJournal) {
  // Crash-only resume under process isolation: stop a batch mid-flight (the
  // supervisor equivalent of being SIGKILLed — the journal is all that
  // survives), then resume from the journal. Terminal records must match an
  // uninterrupted reference run field for field, completed jobs must not
  // re-run (deterministic executor + journal skip), and no record may be
  // duplicated or lost.
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 24; ++i) {
    JobSpec j;
    j.id = "res-" + std::to_string(i);
    j.kind = "synthetic";
    if (i % 7 == 3) j.params["failpoint"] = "soak.exec.site:segv";
    jobs.push_back(std::move(j));
  }
  FnExecutor exec([](const JobSpec& job, const util::RunControl* wd, int) {
    // A small real delay so the mid-flight stop lands with jobs still queued.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return soak_execute(job, wd);
  });

  // Reference: uninterrupted run, memory-only journal.
  std::map<std::string, JobRecord> reference;
  {
    Journal journal = Journal::open("");
    const BatchSummary s = run_batch(jobs, exec, journal, isolate_options());
    EXPECT_EQ(s.accounted(), jobs.size());
    reference = journal.records();
  }

  const std::string journal_path = temp_path("rgleak_isolate_resume.journal");
  std::remove(journal_path.c_str());

  // Phase 1: interrupt mid-flight.
  std::set<std::string> terminal_after_stop;
  {
    Journal journal = Journal::open(journal_path);
    RunControl run;
    BatchOptions opts = isolate_options();
    opts.workers = 2;
    opts.run = &run;
    std::thread stopper([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      run.request_stop();
    });
    const BatchSummary s = run_batch(jobs, exec, journal, opts);
    stopper.join();
    EXPECT_EQ(s.accounted(), jobs.size());
    EXPECT_EQ(s.succeeded + s.failed, journal.size());
    for (const auto& [id, rec] : journal.records()) terminal_after_stop.insert(id);
  }

  // Phase 2: resume. Terminal jobs are skipped, the rest run to terminal.
  {
    Journal journal = Journal::open(journal_path);
    EXPECT_EQ(journal.size(), terminal_after_stop.size()) << "reopen must be lossless";
    const BatchSummary s = run_batch(jobs, exec, journal, isolate_options());
    EXPECT_EQ(s.accounted(), jobs.size());
    EXPECT_EQ(s.skipped, terminal_after_stop.size());
    EXPECT_FALSE(s.stopped);
  }

  const Journal final_journal = Journal::open(journal_path);
  const auto records = final_journal.records();
  ASSERT_EQ(records.size(), jobs.size());
  for (const JobSpec& job : jobs) {
    const auto it = records.find(job.id);
    ASSERT_NE(it, records.end()) << job.id;
    const auto ref = reference.find(job.id);
    ASSERT_NE(ref, reference.end()) << job.id;
    EXPECT_EQ(it->second.status, ref->second.status) << job.id;
    EXPECT_EQ(it->second.attempts, ref->second.attempts) << job.id;
    EXPECT_EQ(it->second.mean_na, ref->second.mean_na) << job.id;
    EXPECT_EQ(it->second.sigma_na, ref->second.sigma_na) << job.id;
    EXPECT_EQ(it->second.method, ref->second.method) << job.id;
    if (ref->second.status == JobStatus::kFailed)
      EXPECT_NE(it->second.error.find("\"error\":\"crash\""), std::string::npos)
          << job.id << ": " << it->second.error;
  }
  std::remove(journal_path.c_str());
  std::remove((journal_path + ".lock").c_str());
}

}  // namespace
}  // namespace rgleak::service
