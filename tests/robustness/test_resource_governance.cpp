// Resource governance end to end: a 64-job mixed batch under a memory budget
// a quarter of the unconstrained peak completes with zero crashes, walks the
// admission ladder deterministically, and rejects what cannot fit with typed
// ResourceErrors; injected std::bad_alloc at every charged arena surfaces as
// a located, retryable resource failure the batch recovers from.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "../test_util.h"
#include "charlib/io.h"
#include "math/rng.h"
#include "netlist/io.h"
#include "netlist/random_circuit.h"
#include "service/batch_runner.h"
#include "service/job_runner.h"
#include "service/journal.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/memory.h"

namespace rgleak::service {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;
using util::FailpointAction;
using util::MemoryBudget;
using util::ScopedFailpoint;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

struct GovInputs {
  std::string lib_path = temp_path("rgleak_gov_lib.rgchar");
  std::string netlist_path = temp_path("rgleak_gov_netlist.rgnl");

  GovInputs() {
    charlib::save_characterization(mini_chars_analytic(), lib_path);
    netlist::UsageHistogram usage;
    usage.alphas.assign(mini_library().size(), 0.0);
    usage.alphas[0] = 0.5;
    usage.alphas[1] = 0.3;
    usage.alphas[2] = 0.2;
    math::Rng gen(97);
    netlist::save_netlist(generate_random_circuit(mini_library(), usage, 64, gen), netlist_path);
  }
};

const GovInputs& inputs() {
  static const GovInputs in;
  return in;
}

// Restores the process-wide budget when a test exits, so governance tests
// cannot leak a limit into unrelated suites.
struct ProcessLimitGuard {
  ~ProcessLimitGuard() { MemoryBudget::process().set_limit(0); }
};

// 64 jobs: 16 estimates, 16 linear netlists, 8 exact-FFT, 8 exact-direct,
// 16 Monte Carlo. Fixed ids and parameters: the governed outcome must be
// reproducible record for record.
std::vector<JobSpec> mixed_manifest() {
  std::ostringstream ms;
  int n = 0;
  for (int i = 0; i < 16; ++i)
    ms << "{\"id\":\"job-" << n++ << "-est\",\"kind\":\"estimate\",\"lib\":\"" << inputs().lib_path
       << "\",\"gates\":" << (200 + 20 * i)
       << ",\"die_um\":\"20x20\",\"usage\":\"INV_X1:3,NAND2_X1:2,NOR2_X1:1\",\"p\":0.5}\n";
  for (int i = 0; i < 16; ++i)
    ms << "{\"id\":\"job-" << n++ << "-lin\",\"kind\":\"netlist\",\"lib\":\"" << inputs().lib_path
       << "\",\"netlist\":\"" << inputs().netlist_path << "\"}\n";
  for (int i = 0; i < 8; ++i)
    ms << "{\"id\":\"job-" << n++ << "-fft\",\"kind\":\"netlist\",\"lib\":\"" << inputs().lib_path
       << "\",\"netlist\":\"" << inputs().netlist_path
       << "\",\"exact\":true,\"exact_method\":\"fft\",\"threads\":2}\n";
  for (int i = 0; i < 8; ++i)
    ms << "{\"id\":\"job-" << n++ << "-dir\",\"kind\":\"netlist\",\"lib\":\"" << inputs().lib_path
       << "\",\"netlist\":\"" << inputs().netlist_path
       << "\",\"exact\":true,\"exact_method\":\"direct\"}\n";
  for (int i = 0; i < 16; ++i)
    ms << "{\"id\":\"job-" << n++ << "-mc\",\"kind\":\"mc\",\"lib\":\"" << inputs().lib_path
       << "\",\"netlist\":\"" << inputs().netlist_path << "\",\"trials\":10,\"seed\":" << (100 + i)
       << "}\n";
  std::istringstream is(ms.str());
  return parse_manifest(is, "governed.jsonl");
}

BatchOptions gov_options() {
  BatchOptions opts;
  // Asserts on in-parent state (MemoryBudget::process() peaks, failpoint hit
  // counters): pin in-process even under the CI RGLEAK_ISOLATE override.
  opts.isolate = ExecIsolation::kInProcess;
  opts.workers = 4;
  opts.retry.max_attempts = 2;
  opts.retry.backoff.base_ms = 1.0;
  opts.retry.backoff.cap_ms = 5.0;
  opts.job_deadline_s = 30.0;
  return opts;
}

std::map<std::string, JobRecord> run_governed(const std::vector<JobSpec>& jobs,
                                              std::uint64_t budget, BatchSummary* out_summary) {
  MemoryBudget::process().set_limit(budget);
  ResourceGovernor gov;
  gov.mem_budget_bytes = budget;
  JobRunner runner(mini_library());
  runner.set_governor(&gov);
  Journal journal = Journal::open("");
  const BatchSummary s = run_batch(jobs, runner, journal, gov_options());
  if (out_summary != nullptr) *out_summary = s;
  return journal.records();
}

TEST(ResourceGovernance, QuarterBudgetBatchCompletesWithTypedOutcomes) {
  const ProcessLimitGuard guard;
  const std::vector<JobSpec> jobs = mixed_manifest();
  ASSERT_EQ(jobs.size(), 64u);

  // Reference pass: unconstrained, tracking the peak charged bytes.
  MemoryBudget::process().set_limit(0);
  MemoryBudget::process().reset_peak();
  BatchSummary unconstrained;
  const auto reference = run_governed(jobs, 0, &unconstrained);
  EXPECT_EQ(unconstrained.succeeded, 64u) << "unconstrained mixed batch must be clean";
  const std::uint64_t peak = MemoryBudget::process().peak();
  EXPECT_GT(peak, 0u) << "arenas charged nothing; governance would be vacuous";

  // Governed pass at a quarter of that peak — floored at 128 KiB so the
  // admission model (sized for real designs) still has rungs that fit the
  // mini fixtures.
  const std::uint64_t budget = std::max<std::uint64_t>(peak / 4, 128u << 10);
  BatchSummary s;
  const auto records = run_governed(jobs, budget, &s);

  EXPECT_EQ(s.total, 64u);
  EXPECT_EQ(s.accounted(), 64u);
  EXPECT_EQ(s.interrupted, 0u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_FALSE(s.stopped);
  EXPECT_EQ(records.size(), 64u);

  std::size_t degraded = 0;
  for (const auto& [id, rec] : records) {
    if (rec.status == JobStatus::kFailed) {
      // The only legal failure under a memory budget is the typed one.
      EXPECT_NE(rec.error.find("\"error\":\"resource\""), std::string::npos)
          << id << ": " << rec.error;
    }
    if (!rec.degradation.empty()) {
      ++degraded;
      EXPECT_EQ(rec.degradation.rfind("mem: ", 0), 0u) << id << ": " << rec.degradation;
      EXPECT_EQ(rec.status, JobStatus::kSucceeded)
          << id << ": a degraded admission that still failed";
    }
  }
  EXPECT_GT(degraded + s.failed, 0u) << "quarter budget exerted no pressure at all";

  // Deterministic ladder: the same budget walks every job to the same rung.
  const auto replay = run_governed(jobs, budget, nullptr);
  ASSERT_EQ(replay.size(), records.size());
  for (const auto& [id, rec] : records) {
    const JobRecord& again = replay.at(id);
    EXPECT_EQ(again.status, rec.status) << id;
    EXPECT_EQ(again.method, rec.method) << id;
    EXPECT_EQ(again.degradation, rec.degradation) << id;
  }
}

TEST(ResourceGovernance, FftJobsDegradeToDirectUnderTightBudget) {
  const ProcessLimitGuard guard;
  const std::vector<JobSpec> jobs = mixed_manifest();
  // 128 KiB: below the FFT rung's prediction at these site counts, above the
  // direct and linear rungs, below one MC worker.
  const auto records = run_governed(jobs, 128u << 10, nullptr);
  for (const auto& [id, rec] : records) {
    if (id.find("-fft") != std::string::npos) {
      EXPECT_EQ(rec.status, JobStatus::kSucceeded) << id;
      EXPECT_EQ(rec.degradation, "mem: exact_fft->exact_direct") << id;
    } else if (id.find("-mc") != std::string::npos) {
      EXPECT_EQ(rec.status, JobStatus::kFailed) << id << ": one MC worker must not fit";
      EXPECT_NE(rec.error.find("\"error\":\"resource\""), std::string::npos) << id;
    } else {
      EXPECT_EQ(rec.status, JobStatus::kSucceeded) << id << ": " << rec.error;
      EXPECT_TRUE(rec.degradation.empty()) << id << ": " << rec.degradation;
    }
  }
}

// One batch job per arena site, with a one-shot bad_alloc injected at that
// site: the first attempt fails as a resource error, the retry succeeds —
// the batch absorbs allocation failure at every charged arena.
TEST(ResourceGovernance, AllocFailpointAtEveryArenaIsTypedAndRetryable) {
  const ProcessLimitGuard guard;
  MemoryBudget::process().set_limit(0);

  struct Case {
    const char* site;
    const char* manifest;
  };
  const std::string mc_job = std::string("{\"id\":\"j\",\"kind\":\"mc\",\"lib\":\"") +
                             inputs().lib_path + "\",\"netlist\":\"" + inputs().netlist_path +
                             "\",\"trials\":5}";
  const std::string fft_job = std::string("{\"id\":\"j\",\"kind\":\"netlist\",\"lib\":\"") +
                              inputs().lib_path + "\",\"netlist\":\"" + inputs().netlist_path +
                              "\",\"exact\":true,\"exact_method\":\"fft\"}";
  const std::string dir_job = std::string("{\"id\":\"j\",\"kind\":\"netlist\",\"lib\":\"") +
                              inputs().lib_path + "\",\"netlist\":\"" + inputs().netlist_path +
                              "\",\"exact\":true,\"exact_method\":\"direct\"}";
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"mc.workspace.alloc", mc_job},
      {"process.sampler.alloc", mc_job},
      {"math.fft.plan.alloc", mc_job},
      {"core.exact.fft.alloc", fft_job},
      {"core.exact.direct.alloc", dir_job},
  };

  for (const auto& [site, manifest] : cases) {
    SCOPED_TRACE(site);
    std::istringstream is(manifest);
    const std::vector<JobSpec> jobs = parse_manifest(is, "alloc.jsonl");
    const ScopedFailpoint alloc(site, FailpointAction::kAlloc, 1);

    JobRunner runner(mini_library());
    Journal journal = Journal::open("");
    const BatchSummary s = run_batch(jobs, runner, journal, gov_options());

    EXPECT_EQ(util::Failpoints::hits(site), 1u) << "failpoint never reached";
    EXPECT_EQ(s.succeeded, 1u) << "retry after the one-shot bad_alloc must succeed";
    EXPECT_EQ(s.retries, 1u);
    const JobRecord rec = journal.records().at("j");
    EXPECT_EQ(rec.attempts, 2);
    EXPECT_EQ(rec.status, JobStatus::kSucceeded);
  }
}

// A persistent allocation failure ends as a terminal typed record that a
// resumed batch honors without re-running the job.
TEST(ResourceGovernance, PersistentAllocFailureIsTerminalAndResumable) {
  const ProcessLimitGuard guard;
  MemoryBudget::process().set_limit(0);
  const std::string manifest = std::string("{\"id\":\"doomed\",\"kind\":\"mc\",\"lib\":\"") +
                               inputs().lib_path + "\",\"netlist\":\"" + inputs().netlist_path +
                               "\",\"trials\":5}";
  std::istringstream is(manifest);
  const std::vector<JobSpec> jobs = parse_manifest(is, "alloc.jsonl");

  const std::string journal_path = temp_path("rgleak_gov_resume.journal");
  std::remove(journal_path.c_str());
  {
    const ScopedFailpoint alloc("mc.workspace.alloc", FailpointAction::kAlloc, SIZE_MAX);
    JobRunner runner(mini_library());
    Journal journal = Journal::open(journal_path);
    const BatchSummary s = run_batch(jobs, runner, journal, gov_options());
    EXPECT_EQ(s.failed, 1u);
    const JobRecord rec = journal.records().at("doomed");
    EXPECT_EQ(rec.attempts, 2) << "resource failures are retryable";
    EXPECT_NE(rec.error.find("\"error\":\"resource\""), std::string::npos) << rec.error;
    EXPECT_NE(rec.error.find("worker workspace"), std::string::npos)
        << rec.error << ": resource errors must locate the arena";
  }
  // Resume with the failure injection gone: the terminal record is honored.
  {
    JobRunner runner(mini_library());
    Journal journal = Journal::open(journal_path);
    const BatchSummary s = run_batch(jobs, runner, journal, gov_options());
    EXPECT_EQ(s.skipped, 1u);
    EXPECT_EQ(s.succeeded + s.failed, 0u);
  }
  std::remove(journal_path.c_str());
}

// Admission rejections at the floor surface in the journal exactly like any
// other structured failure — parseable round trip including the new fields.
TEST(ResourceGovernance, JournalRoundTripsDegradationAndBeats) {
  JobRecord rec;
  rec.id = "rt";
  rec.status = JobStatus::kSucceeded;
  rec.attempts = 2;
  rec.mean_na = 12.5;
  rec.sigma_na = 1.25;
  rec.method = "exact_direct";
  rec.degradation = "mem: exact_fft->exact_direct";
  rec.beats = 4242;
  const std::string line = journal_record_json(rec);
  const JobRecord back = parse_journal_record(line, "test", 1);
  EXPECT_EQ(back.degradation, rec.degradation);
  EXPECT_EQ(back.beats, rec.beats);
  EXPECT_EQ(back.method, rec.method);
}

}  // namespace
}  // namespace rgleak::service
