// Malformed-input corpus: every bad .bench file must fail with a typed
// ParseError naming the file and the exact 1-based line — never a crash, a
// silent zero, or an untyped exception. RGLEAK_TEST_CORPUS_DIR is injected by
// CMake and points at tests/netlist/corpus.

#include <gtest/gtest.h>

#include <string>

#include "../test_util.h"
#include "netlist/bench.h"
#include "util/error.h"

namespace rgleak::netlist {
namespace {

using rgleak::testing::full_library;

std::string corpus(const char* file) {
  return std::string(RGLEAK_TEST_CORPUS_DIR) + "/" + file;
}

struct CorpusCase {
  const char* file;
  std::size_t line;     // expected 1-based failure line
  const char* needle;   // must appear in what()
};

const CorpusCase kMalformed[] = {
    {"bad_unknown_function.bench", 4, "unknown gate function"},
    {"bad_wide_nand.bench", 6, "no library cell implements NAND with 5 inputs"},
    {"bad_missing_paren.bench", 1, "expected ')'"},
    {"bad_trailing_garbage.bench", 3, "unexpected trailing characters"},
    {"bad_duplicate_definition.bench", 4, "first defined at line 3"},
    {"bad_undefined_signal.bench", 2, "'phantom' is referenced but never defined"},
    {"bad_no_equals.bench", 3, "expected '='"},
    {"bad_not_fanin.bench", 3, "NOT takes exactly one input"},
    {"bad_empty_args.bench", 2, "has no inputs"},
    {"bad_nand_one_input.bench", 2, "NAND needs at least two inputs"},
    {"bad_only_comments.bench", 2, "netlist contains no gates"},
};

TEST(BenchCorpus, EveryMalformedFileFailsWithLocatedParseError) {
  for (const CorpusCase& c : kMalformed) {
    const std::string path = corpus(c.file);
    try {
      (void)load_bench(full_library(), path);
      ADD_FAILURE() << c.file << ": expected ParseError, parse succeeded";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.source(), path) << c.file;
      EXPECT_EQ(e.line(), c.line) << c.file << ": " << e.what();
      const std::string what = e.what();
      EXPECT_NE(what.find(c.needle), std::string::npos) << c.file << ": " << what;
      // what() leads with "path:line:" so editors can jump to the failure.
      EXPECT_EQ(what.rfind(path + ":" + std::to_string(c.line), 0), 0u)
          << c.file << ": " << what;
    } catch (const std::exception& e) {
      ADD_FAILURE() << c.file << ": wrong exception type: " << e.what();
    }
  }
}

TEST(BenchCorpus, MalformedColumnsPointIntoTheLine) {
  // Spot-check the column tracking on a token in mid-line.
  try {
    (void)load_bench(full_library(), corpus("bad_unknown_function.bench"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.column(), 5u);  // "g = FOO(..." - FOO starts at column 5
    EXPECT_EQ(e.token(), "FOO");
  }
}

TEST(BenchCorpus, GoodC17Loads) {
  const Netlist nl = load_bench(full_library(), corpus("good_c17.bench"));
  EXPECT_EQ(nl.name(), "good_c17");
  ASSERT_EQ(nl.size(), 6u);
  const std::size_t nand2 = full_library().index_of("NAND2_X1");
  for (std::size_t i = 0; i < nl.size(); ++i) EXPECT_EQ(nl.gate(i).cell_index, nand2);
}

TEST(BenchCorpus, GoodS27LoadsWithFlops) {
  const Netlist nl = load_bench(full_library(), corpus("good_s27.bench"));
  ASSERT_EQ(nl.size(), 13u);
  std::size_t dffs = 0;
  const std::size_t dff = full_library().index_of("DFF_X1");
  for (std::size_t i = 0; i < nl.size(); ++i)
    if (nl.gate(i).cell_index == dff) ++dffs;
  EXPECT_EQ(dffs, 3u);
}

TEST(BenchCorpus, MissingFileIsIoError) {
  EXPECT_THROW((void)load_bench(full_library(), corpus("no_such_file.bench")), IoError);
}

}  // namespace
}  // namespace rgleak::netlist
