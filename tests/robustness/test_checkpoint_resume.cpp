// Checkpoint/resume of the full-chip Monte-Carlo engine: a run interrupted
// at an arbitrary point and resumed from its checkpoint must reproduce the
// uninterrupted result bit for bit (fixed seed and thread count), the
// checkpoint cadence must not change the result, mismatched identities must
// be refused, and the atomic writer must never leave truncated artifacts.
// The *Concurrent* test also runs under TSan via scripts/tsan_check.sh.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "../test_util.h"
#include "mc/checkpoint.h"
#include "mc/full_chip_mc.h"
#include "netlist/io.h"
#include "netlist/random_circuit.h"
#include "placement/placement.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/run_control.h"

namespace rgleak::mc {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;
using util::FailpointAction;
using util::RunControl;
using util::ScopedFailpoint;

netlist::UsageHistogram test_usage() {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[0] = 0.6;
  u.alphas[1] = 0.4;
  return u;
}

struct Fixture {
  netlist::Netlist nl;
  placement::Placement pl;

  explicit Fixture(std::size_t rows = 8, std::size_t cols = 8)
      : nl([&] {
          math::Rng gen(41);
          return generate_random_circuit(mini_library(), test_usage(), rows * cols, gen);
        }()),
        pl(&nl, [&] {
          placement::Floorplan fp;
          fp.rows = rows;
          fp.cols = cols;
          fp.site_w_nm = 1500.0;
          fp.site_h_nm = 1500.0;
          return fp;
        }()) {}
};

// Temp path helper; gtest runs tests in the build tree's working directory.
std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

void expect_bit_identical(const FullChipMcResult& a, const FullChipMcResult& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.mean_na, b.mean_na);
  EXPECT_EQ(a.sigma_na, b.sigma_na);
  EXPECT_EQ(a.p50_na, b.p50_na);
  EXPECT_EQ(a.p90_na, b.p90_na);
  EXPECT_EQ(a.p99_na, b.p99_na);
}

FullChipMcOptions base_options(std::size_t threads) {
  FullChipMcOptions opts;
  opts.trials = 120;
  opts.seed = 99;
  opts.threads = threads;
  opts.resample_states_per_trial = true;
  return opts;
}

// Interrupt a run partway (per-trial delay + stopper thread), then resume
// from the final checkpoint and compare against the uninterrupted reference.
void check_resume_bit_identical(std::size_t threads, const char* ckpt_name) {
  const Fixture fx;
  const std::string ckpt = temp_path(ckpt_name);
  std::remove(ckpt.c_str());

  FullChipMcResult reference;
  {
    FullChipMonteCarlo engine(fx.pl, mini_chars_analytic(), base_options(threads));
    reference = engine.run();
  }

  bool interrupted = false;
  {
    FullChipMcOptions opts = base_options(threads);
    opts.checkpoint_path = ckpt;
    opts.checkpoint_every = 12;
    RunControl run;
    opts.run = &run;
    FullChipMonteCarlo engine(fx.pl, mini_chars_analytic(), opts);
    const ScopedFailpoint fp("mc.trial", FailpointAction::kDelay, SIZE_MAX, 1);
    std::thread stopper([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      run.request_stop();
    });
    try {
      const FullChipMcResult r = engine.run();
      // The stop lost the race and the run completed: still a valid outcome,
      // and it must match the reference.
      expect_bit_identical(r, reference);
    } catch (const DeadlineExceeded&) {
      interrupted = true;
    }
    stopper.join();
  }

  if (interrupted) {
    FullChipMcOptions opts = base_options(threads);
    opts.resume_path = ckpt;
    FullChipMonteCarlo engine(fx.pl, mini_chars_analytic(), opts);
    expect_bit_identical(engine.run(), reference);
  }
  std::remove(ckpt.c_str());
}

TEST(CheckpointResume, SerialRunResumesBitIdentical) {
  check_resume_bit_identical(1, "rgleak_ckpt_serial.txt");
}

TEST(CheckpointResume, ConcurrentThreadedRunResumesBitIdentical) {
  check_resume_bit_identical(3, "rgleak_ckpt_threaded.txt");
}

TEST(CheckpointResume, CheckpointCadenceDoesNotChangeTheResult) {
  const Fixture fx;
  FullChipMcResult results[3];
  const std::size_t cadences[3] = {0, 7, 1000};
  for (int i = 0; i < 3; ++i) {
    FullChipMcOptions opts = base_options(3);
    opts.checkpoint_every = cadences[i];
    if (cadences[i] != 0) opts.checkpoint_path = temp_path("rgleak_ckpt_cadence.txt");
    FullChipMonteCarlo engine(fx.pl, mini_chars_analytic(), opts);
    results[i] = engine.run();
  }
  expect_bit_identical(results[1], results[0]);
  expect_bit_identical(results[2], results[0]);
  std::remove(temp_path("rgleak_ckpt_cadence.txt").c_str());
}

TEST(CheckpointResume, StopBeforeFirstTrialResumesToFullResult) {
  // Deterministic interruption: a control stopped before run() begins drains
  // at trial zero; the checkpoint then carries only initial RNG/field state.
  const Fixture fx;
  const std::string ckpt = temp_path("rgleak_ckpt_zero.txt");
  std::remove(ckpt.c_str());

  FullChipMcResult reference;
  {
    FullChipMonteCarlo engine(fx.pl, mini_chars_analytic(), base_options(1));
    reference = engine.run();
  }
  {
    FullChipMcOptions opts = base_options(1);
    opts.checkpoint_path = ckpt;
    RunControl run;
    run.request_stop();
    opts.run = &run;
    FullChipMonteCarlo engine(fx.pl, mini_chars_analytic(), opts);
    EXPECT_THROW(engine.run(), DeadlineExceeded);
  }
  const McCheckpoint ckpt_data = load_mc_checkpoint(ckpt);
  EXPECT_EQ(ckpt_data.workers.size(), 1u);
  EXPECT_TRUE(ckpt_data.workers[0].samples.empty());
  {
    FullChipMcOptions opts = base_options(1);
    opts.resume_path = ckpt;
    FullChipMonteCarlo engine(fx.pl, mini_chars_analytic(), opts);
    expect_bit_identical(engine.run(), reference);
  }
  std::remove(ckpt.c_str());
}

TEST(CheckpointResume, MismatchedIdentityIsRefused) {
  const Fixture fx;
  const std::string ckpt = temp_path("rgleak_ckpt_mismatch.txt");
  {
    FullChipMcOptions opts = base_options(1);
    opts.checkpoint_path = ckpt;
    RunControl run;
    run.request_stop();
    opts.run = &run;
    FullChipMonteCarlo engine(fx.pl, mini_chars_analytic(), opts);
    EXPECT_THROW(engine.run(), DeadlineExceeded);
  }
  FullChipMcOptions opts = base_options(1);
  opts.seed = 100;  // differs from the checkpointed 99
  opts.resume_path = ckpt;
  FullChipMonteCarlo engine(fx.pl, mini_chars_analytic(), opts);
  EXPECT_THROW(engine.run(), ConfigError);
  std::remove(ckpt.c_str());
}

TEST(CheckpointResume, TruncatedCheckpointIsAParseError) {
  const std::string path = temp_path("rgleak_ckpt_truncated.txt");
  {
    std::ofstream os(path);
    os << "rgmcckpt-v1\nseed 99\nthreads 1\n";  // cut off mid-header
  }
  EXPECT_THROW(load_mc_checkpoint(path), ParseError);
  std::remove(path.c_str());
  EXPECT_THROW(load_mc_checkpoint(path), IoError);  // now missing entirely
}

TEST(CheckpointResume, FailedCheckpointWriteLeavesNoTruncatedArtifact) {
  // The atomic writer must either publish a complete checkpoint or nothing:
  // a failure injected mid-write leaves neither the target nor a temp file.
  McCheckpoint ckpt;
  ckpt.seed = 1;
  ckpt.threads = 1;
  ckpt.trials = 10;
  ckpt.workers.resize(1);
  const std::string path = temp_path("rgleak_ckpt_atomic.txt");
  std::remove(path.c_str());
  {
    const ScopedFailpoint fp("util.atomic_file.write", FailpointAction::kThrow, 1);
    EXPECT_THROW(save_mc_checkpoint(path, ckpt), util::FailpointError);
  }
  EXPECT_FALSE(std::ifstream(path).good());
  // A later clean save works and round-trips.
  save_mc_checkpoint(path, ckpt);
  const McCheckpoint loaded = load_mc_checkpoint(path);
  EXPECT_EQ(loaded.seed, 1u);
  EXPECT_EQ(loaded.trials, 10u);
  std::remove(path.c_str());
}

TEST(CheckpointResume, FailureAtCommitAlsoLeavesNoArtifact) {
  McCheckpoint ckpt;
  ckpt.seed = 2;
  ckpt.threads = 1;
  ckpt.trials = 4;
  ckpt.workers.resize(1);
  const std::string path = temp_path("rgleak_ckpt_commit.txt");
  std::remove(path.c_str());
  {
    const ScopedFailpoint fp("util.atomic_file.commit", FailpointAction::kThrow, 1);
    EXPECT_THROW(save_mc_checkpoint(path, ckpt), util::FailpointError);
  }
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(CheckpointResume, InterruptedNetlistSaveKeepsThePreviousFile) {
  // End-to-end interrupt-safety of a retrofitted writer: with a good file
  // already on disk, a failed re-save must leave the original intact.
  math::Rng gen(7);
  const netlist::Netlist nl = generate_random_circuit(mini_library(), test_usage(), 16, gen);
  const std::string path = temp_path("rgleak_atomic_netlist.rgnl");
  netlist::save_netlist(nl, path);
  std::string before;
  {
    std::ifstream is(path);
    before.assign(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>());
  }
  {
    const ScopedFailpoint fp("util.atomic_file.write", FailpointAction::kThrow, 1);
    EXPECT_THROW(netlist::save_netlist(nl, path), util::FailpointError);
  }
  std::string after;
  {
    std::ifstream is(path);
    after.assign(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>());
  }
  EXPECT_EQ(before, after);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rgleak::mc
