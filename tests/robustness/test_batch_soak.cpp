// Batch-layer soak: 200 real jobs through the production JobRunner under a
// randomized (but deterministically seeded) matrix of armed failpoints. The
// contract under fire: the batch process never dies, the queue never wedges,
// and every manifest job ends as success or a structured failure record.
// Also: crash-only resume — a batch stopped mid-flight and resumed from its
// journal must not re-run completed jobs, must not duplicate records, and
// must converge to the same results as an uninterrupted run.
// The *Concurrent* soak runs under TSan via scripts/tsan_check.sh.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "charlib/io.h"
#include "math/rng.h"
#include "netlist/io.h"
#include "netlist/random_circuit.h"
#include "service/batch_runner.h"
#include "service/job_runner.h"
#include "service/journal.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/run_control.h"

namespace rgleak::service {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;
using util::FailpointAction;
using util::Failpoints;
using util::RunControl;
using util::ScopedFailpoint;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// On-disk inputs the manifests reference: a characterized mini library and a
// small random netlist, written once per process.
struct SoakInputs {
  std::string lib_path = temp_path("rgleak_soak_lib.rgchar");
  std::string netlist_path = temp_path("rgleak_soak_netlist.rgnl");

  SoakInputs() {
    charlib::save_characterization(mini_chars_analytic(), lib_path);
    netlist::UsageHistogram usage;
    usage.alphas.assign(mini_library().size(), 0.0);
    usage.alphas[0] = 0.5;
    usage.alphas[1] = 0.3;
    usage.alphas[2] = 0.2;
    math::Rng gen(41);
    netlist::save_netlist(generate_random_circuit(mini_library(), usage, 64, gen), netlist_path);
  }
};

const SoakInputs& inputs() {
  static const SoakInputs in;
  return in;
}

// A deterministic 200-job manifest mixing every job kind with a sprinkling of
// permanently-broken jobs, rendered as JSONL and parsed through the real
// manifest parser.
std::vector<JobSpec> soak_manifest(std::mt19937& rng) {
  std::ostringstream ms;
  for (int i = 0; i < 200; ++i) {
    const std::string id = "job-" + std::to_string(i);
    const int roll = static_cast<int>(rng() % 100);
    if (roll < 35) {
      ms << "{\"id\":\"" << id << "\",\"kind\":\"estimate\",\"lib\":\"" << inputs().lib_path
         << "\",\"gates\":" << (200 + rng() % 600)
         << ",\"die_um\":\"20x20\",\"usage\":\"INV_X1:3,NAND2_X1:2,NOR2_X1:1\""
         << ",\"method\":\"" << (roll % 2 == 0 ? "linear" : "auto") << "\",\"p\":0.5}\n";
    } else if (roll < 55) {
      ms << "{\"id\":\"" << id << "\",\"kind\":\"netlist\",\"lib\":\"" << inputs().lib_path
         << "\",\"netlist\":\"" << inputs().netlist_path << "\"}\n";
    } else if (roll < 70) {
      const char* method = roll % 3 == 0 ? "fft" : (roll % 3 == 1 ? "direct" : "auto");
      ms << "{\"id\":\"" << id << "\",\"kind\":\"netlist\",\"lib\":\"" << inputs().lib_path
         << "\",\"netlist\":\"" << inputs().netlist_path << "\",\"exact\":true,\"exact_method\":\""
         << method << "\",\"threads\":2}\n";
    } else if (roll < 85) {
      ms << "{\"id\":\"" << id << "\",\"kind\":\"mc\",\"lib\":\"" << inputs().lib_path
         << "\",\"netlist\":\"" << inputs().netlist_path << "\",\"trials\":"
         << (10 + rng() % 20) << ",\"seed\":" << (rng() % 1000) << "}\n";
    } else if (roll < 92) {
      ms << "{\"id\":\"" << id << "\",\"kind\":\"characterize\",\"out\":\""
         << temp_path(("rgleak_soak_out_" + std::to_string(i) + ".rgchar").c_str()) << "\"}\n";
    } else if (roll < 96) {
      // Permanently broken: unknown kind (ConfigError, never retried).
      ms << "{\"id\":\"" << id << "\",\"kind\":\"frobnicate\"}\n";
    } else {
      // Permanently broken: estimate without its required parameters.
      ms << "{\"id\":\"" << id << "\",\"kind\":\"estimate\",\"gates\":10}\n";
    }
  }
  std::istringstream is(ms.str());
  return parse_manifest(is, "soak.jsonl");
}

// Arms 12 failpoint sites with randomized-but-seeded finite counts: the
// matrix covers injection into manifest-referenced io, the estimators (throw
// and NaN), the MC engine, the thread pool, the atomic writer, and the
// service layer itself.
struct FailpointMatrix {
  std::vector<std::string> sites;

  explicit FailpointMatrix(std::mt19937& rng) {
    const auto arm = [&](const char* site, FailpointAction action, std::size_t count,
                         unsigned delay_ms = 0) {
      Failpoints::arm(site, action, count, delay_ms);
      sites.push_back(site);
    };
    const auto roll = [&] { return 1 + static_cast<std::size_t>(rng() % 3); };
    arm("service.job.execute", FailpointAction::kThrow, 3);  // fixed: asserted below
    arm("mc.trial", rng() % 2 == 0 ? FailpointAction::kThrow : FailpointAction::kDelay, roll(), 1);
    arm("estimate.linear.cov", FailpointAction::kNan, roll());
    arm("exact.direct_tile", FailpointAction::kThrow, roll());
    arm("exact.fft_pair", FailpointAction::kThrow, roll());
    arm("thread_pool.task", FailpointAction::kThrow, roll());
    arm("util.atomic_file.write", FailpointAction::kThrow, roll());
    arm("util.atomic_file.commit", FailpointAction::kThrow, 1);
    arm("service.journal.append", FailpointAction::kThrow, roll());
    arm("charlib.io.read_line", FailpointAction::kThrow, 1);
    arm("netlist.io.read_line", FailpointAction::kThrow, 1);
    arm("netlist.io.open", FailpointAction::kThrow, 1);
  }
  ~FailpointMatrix() { Failpoints::disarm_all(); }
};

BatchOptions soak_options() {
  BatchOptions opts;
  // These soaks assert on in-parent state (Failpoints::hits, RecordingRunner
  // side effects): pin in-process even under the CI RGLEAK_ISOLATE override.
  // The process-isolated crash soak lives in test_process_isolation_soak.cpp.
  opts.isolate = ExecIsolation::kInProcess;
  opts.workers = 4;
  opts.queue_depth = 8;
  opts.shed_policy = ShedPolicy::kBlock;  // soak measures isolation, not shedding
  opts.retry.max_attempts = 3;
  opts.retry.backoff.base_ms = 1.0;  // keep 200 jobs' worth of retries fast
  opts.retry.backoff.cap_ms = 5.0;
  opts.job_deadline_s = 20.0;  // no single job may wedge the soak
  return opts;
}

TEST(BatchSoak, ConcurrentRandomizedFailpointMatrix) {
  std::mt19937 rng(20260805u);
  const std::vector<JobSpec> jobs = soak_manifest(rng);
  ASSERT_EQ(jobs.size(), 200u);

  const FailpointMatrix matrix(rng);
  ASSERT_GE(matrix.sites.size(), 10u);

  // Journal into the artifacts directory ci.yml uploads when the soak fails,
  // so a red CI run ships the failure records with it.
  std::filesystem::create_directories("rgleak_soak_artifacts");
  std::remove("rgleak_soak_artifacts/soak.journal");  // stale journals would skip jobs
  JobRunner runner(mini_library());
  Journal journal = Journal::open("rgleak_soak_artifacts/soak.journal");
  const BatchSummary s = run_batch(jobs, runner, journal, soak_options());

  // The process is alive and the queue drained: every job is accounted for
  // exactly once, none interrupted (nothing requested a stop), none shed.
  EXPECT_EQ(s.total, 200u);
  EXPECT_EQ(s.accounted(), 200u);
  EXPECT_EQ(s.interrupted, 0u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_FALSE(s.stopped);
  EXPECT_EQ(s.succeeded + s.failed, 200u);

  // Every manifest job carries a terminal record; failures are structured
  // error JSON, not stringly chaos.
  const auto records = journal.records();
  EXPECT_EQ(records.size(), 200u);
  for (const JobSpec& job : jobs) {
    const auto it = records.find(job.id);
    ASSERT_NE(it, records.end()) << job.id << " has no journal record";
    const JobRecord& rec = it->second;
    EXPECT_GE(rec.attempts, 1) << job.id;
    if (rec.status == JobStatus::kSucceeded) {
      EXPECT_TRUE(rec.error.empty()) << job.id;
    } else {
      EXPECT_EQ(rec.status, JobStatus::kFailed) << job.id;
      EXPECT_NE(rec.error.find("\"error\":"), std::string::npos)
          << job.id << ": unstructured failure '" << rec.error << "'";
    }
  }

  // The matrix actually fired: the service.job.execute site has a fixed
  // count of 3 and 200 executions to burn it on, and each firing is a foreign
  // exception the runner must have retried.
  EXPECT_EQ(Failpoints::hits("service.job.execute"), 3u);
  EXPECT_GE(s.retries, 3u);
  std::size_t sites_fired = 0;
  for (const std::string& site : matrix.sites)
    if (Failpoints::hits(site) > 0) ++sites_fired;
  EXPECT_GE(sites_fired, 3u) << "failpoint matrix barely exercised";

  // The broken jobs in the mix must have failed permanently (one attempt).
  for (const JobSpec& job : jobs) {
    if (job.kind != "frobnicate") continue;
    EXPECT_EQ(records.at(job.id).status, JobStatus::kFailed) << job.id;
    EXPECT_EQ(records.at(job.id).attempts, 1) << job.id << ": config errors must not retry";
  }
}

// Wraps the production runner, recording which jobs actually executed — the
// probe for "completed jobs are not re-run on resume".
class RecordingRunner : public Executor {
 public:
  explicit RecordingRunner(const cells::StdCellLibrary& library) : inner_(library) {}

  JobOutput execute(const JobSpec& job, const util::RunControl* watchdog, int degrade) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      executed_.insert(job.id);
    }
    return inner_.execute(job, watchdog, degrade);
  }

  std::set<std::string> take_executed() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::set<std::string> out;
    out.swap(executed_);
    return out;
  }

 private:
  JobRunner inner_;
  std::mutex mutex_;
  std::set<std::string> executed_;
};

TEST(BatchSoak, CrashResumeMatchesTheUninterruptedRun) {
  std::mt19937 rng(7u);
  std::vector<JobSpec> jobs = soak_manifest(rng);
  jobs.resize(40);  // enough to interrupt mid-flight, small enough to be quick

  // Reference: the uninterrupted run (no journal file, no failpoints).
  std::map<std::string, JobRecord> reference;
  {
    JobRunner runner(mini_library());
    Journal journal = Journal::open("");
    const BatchSummary s = run_batch(jobs, runner, journal, soak_options());
    EXPECT_EQ(s.accounted(), jobs.size());
    reference = journal.records();
  }

  const std::string journal_path = temp_path("rgleak_soak_resume.journal");
  std::remove(journal_path.c_str());

  // Phase 1: stop the batch mid-flight (paced by a delay failpoint so the
  // stop lands while jobs are still queued), journal on disk.
  std::set<std::string> terminal_after_stop;
  {
    RecordingRunner runner(mini_library());
    Journal journal = Journal::open(journal_path);
    RunControl run;
    BatchOptions opts = soak_options();
    opts.workers = 2;
    opts.run = &run;
    const ScopedFailpoint pace("service.job.execute", FailpointAction::kDelay, SIZE_MAX, 2);
    std::thread stopper([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      run.request_stop();
    });
    const BatchSummary s = run_batch(jobs, runner, journal, opts);
    stopper.join();
    EXPECT_EQ(s.accounted(), jobs.size());
    // A job is terminal or it is nothing: interrupted jobs left no record.
    EXPECT_EQ(s.succeeded + s.failed, journal.size());
    for (const auto& [id, rec] : journal.records()) terminal_after_stop.insert(id);
  }

  // Phase 2: resume from the on-disk journal. Jobs already terminal must be
  // skipped without re-executing; everything else runs to terminal now.
  {
    RecordingRunner runner(mini_library());
    Journal journal = Journal::open(journal_path);
    EXPECT_EQ(journal.size(), terminal_after_stop.size());  // reopen is lossless
    const BatchSummary s = run_batch(jobs, runner, journal, soak_options());
    EXPECT_EQ(s.accounted(), jobs.size());
    EXPECT_EQ(s.skipped, terminal_after_stop.size());
    EXPECT_EQ(s.interrupted, 0u);
    EXPECT_FALSE(s.stopped);
    for (const std::string& id : runner.take_executed())
      EXPECT_EQ(terminal_after_stop.count(id), 0u) << id << " re-ran despite a journal record";
  }

  // The resumed journal holds exactly one record per job, no duplicates
  // (open() would refuse a journal with duplicated records), and the results
  // match the uninterrupted reference bit for bit.
  const Journal final_journal = Journal::open(journal_path);
  const auto records = final_journal.records();
  EXPECT_EQ(records.size(), jobs.size());
  for (const JobSpec& job : jobs) {
    const auto it = records.find(job.id);
    ASSERT_NE(it, records.end()) << job.id;
    const auto ref = reference.find(job.id);
    ASSERT_NE(ref, reference.end()) << job.id;
    EXPECT_EQ(it->second.status, ref->second.status) << job.id;
    EXPECT_EQ(it->second.mean_na, ref->second.mean_na) << job.id;
    EXPECT_EQ(it->second.sigma_na, ref->second.sigma_na) << job.id;
    EXPECT_EQ(it->second.method, ref->second.method) << job.id;
  }
  std::remove(journal_path.c_str());
}

}  // namespace
}  // namespace rgleak::service
