// Failure injection through the real call paths: a worker exception raised
// inside an estimator or MC tile must surface to the caller as that exception
// (no deadlock, no std::terminate), and the shared thread pool must survive
// to run the next clean job. The *Concurrent* tests also run under TSan and
// ASan via scripts/tsan_check.sh and scripts/asan_check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "../test_util.h"
#include "charlib/io.h"
#include "core/estimators.h"
#include "core/random_gate.h"
#include "mc/full_chip_mc.h"
#include "netlist/io.h"
#include "netlist/random_circuit.h"
#include "placement/placement.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace rgleak {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;
using util::FailpointAction;
using util::FailpointError;
using util::Failpoints;
using util::ScopedFailpoint;

netlist::Netlist test_netlist(std::size_t n) {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[0] = 0.5;
  u.alphas[1] = 0.3;
  u.alphas[2] = 0.2;
  math::Rng rng(11);
  return netlist::generate_random_circuit(mini_library(), u, n, rng,
                                          netlist::UsageMatch::kExact, "fp");
}

// Proves the pool still schedules work and joins cleanly.
void expect_pool_usable(util::ThreadPool& pool) {
  std::atomic<int> done{0};
  pool.parallel_for(100, [&](std::size_t) { done.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(done.load(), 100);
}

TEST(FailpointInjection, ExactDirectConcurrentWorkerExceptionLeavesPoolReusable) {
  const netlist::Netlist nl = test_netlist(300);
  const placement::Placement pl(&nl, placement::Floorplan::for_gate_count(nl.size()));
  const core::ExactEstimator exact(mini_chars_analytic(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  core::ExactOptions opts;
  opts.method = core::ExactMethod::kDirect;
  opts.threads = 4;

  util::ThreadPool& pool = util::ThreadPool::shared(4);
  {
    const ScopedFailpoint fp("exact.direct_tile", FailpointAction::kThrow, 1);
    EXPECT_THROW((void)exact.estimate(pl, opts), FailpointError);
    EXPECT_GE(Failpoints::hits("exact.direct_tile"), 1u);
  }
  expect_pool_usable(pool);

  // A clean estimate on the same shared pool matches a serial run.
  const core::LeakageEstimate threaded = exact.estimate(pl, opts);
  core::ExactOptions serial = opts;
  serial.threads = 1;
  const core::LeakageEstimate reference = exact.estimate(pl, serial);
  EXPECT_DOUBLE_EQ(threaded.mean_na, reference.mean_na);
  EXPECT_DOUBLE_EQ(threaded.sigma_na, reference.sigma_na);
}

TEST(FailpointInjection, ExactFftConcurrentPairExceptionPropagates) {
  const netlist::Netlist nl = test_netlist(256);
  const placement::Placement pl(&nl, placement::Floorplan::for_gate_count(nl.size()));
  const core::ExactEstimator exact(mini_chars_analytic(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  core::ExactOptions opts;
  opts.method = core::ExactMethod::kFft;
  opts.threads = 4;
  {
    const ScopedFailpoint fp("exact.fft_pair", FailpointAction::kThrow, 1);
    EXPECT_THROW((void)exact.estimate(pl, opts), FailpointError);
  }
  const core::LeakageEstimate clean = exact.estimate(pl, opts);
  EXPECT_GT(clean.mean_na, 0.0);
  EXPECT_GT(clean.sigma_na, 0.0);
}

TEST(FailpointInjection, McTrialConcurrentExceptionPropagatesAndRetrySucceeds) {
  const netlist::Netlist nl = test_netlist(64);
  const placement::Placement pl(&nl, placement::Floorplan::for_gate_count(nl.size()));
  mc::FullChipMcOptions opts;
  opts.trials = 16;
  opts.threads = 2;
  opts.seed = 5;
  {
    const ScopedFailpoint fp("mc.trial", FailpointAction::kThrow, 1);
    mc::FullChipMonteCarlo mc(pl, mini_chars_analytic(), opts);
    EXPECT_THROW((void)mc.run(), FailpointError);
  }
  mc::FullChipMonteCarlo retry(pl, mini_chars_analytic(), opts);
  const mc::FullChipMcResult r = retry.run();
  EXPECT_EQ(r.trials, 16u);
  EXPECT_GT(r.mean_na, 0.0);
}

TEST(FailpointInjection, NanCorruptionTripsEstimatorPostCondition) {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[0] = 1.0;
  const core::RandomGate rg(mini_chars_analytic(), u, 0.5,
                            core::CorrelationMode::kAnalytic);
  const placement::Floorplan fp = placement::Floorplan::for_gate_count(100);
  const ScopedFailpoint inject("estimate.linear.cov", FailpointAction::kNan);
  try {
    (void)core::estimate_linear(rg, fp);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("estimate_linear"), std::string::npos) << what;
    EXPECT_NE(what.find("non-physical"), std::string::npos) << what;
  }
}

TEST(FailpointInjection, NetlistWriteFailureIsTyped) {
  const netlist::Netlist nl = test_netlist(10);
  const std::string path = ::testing::TempDir() + "/fp_netlist.rgnl";
  const ScopedFailpoint fp("netlist.io.write", FailpointAction::kThrow);
  EXPECT_THROW(netlist::save_netlist(nl, path), FailpointError);
}

TEST(FailpointInjection, CharlibLoadFailureLeavesNoPartialLibrary) {
  std::stringstream buf;
  charlib::save_characterization(mini_chars_analytic(), buf);
  const std::string text = buf.str();

  // Injected read failure: the load throws and hands back nothing.
  {
    const ScopedFailpoint fp("charlib.io.read_line", FailpointAction::kThrow, 1);
    std::stringstream is(text);
    EXPECT_THROW((void)charlib::load_characterization(mini_library(), is), FailpointError);
  }
  // Truncated text: typed ParseError, again no partial result.
  {
    std::stringstream is(text.substr(0, text.size() / 2));
    EXPECT_THROW((void)charlib::load_characterization(mini_library(), is), ParseError);
  }
  // The same process state loads the full text correctly afterwards.
  std::stringstream is(text);
  const charlib::CharacterizedLibrary loaded =
      charlib::load_characterization(mini_library(), is);
  ASSERT_EQ(loaded.size(), mini_chars_analytic().size());
  for (std::size_t ci = 0; ci < loaded.size(); ++ci) {
    ASSERT_EQ(loaded.cell(ci).states.size(), mini_chars_analytic().cell(ci).states.size());
    for (std::size_t s = 0; s < loaded.cell(ci).states.size(); ++s)
      EXPECT_DOUBLE_EQ(loaded.cell(ci).states[s].mean_na,
                       mini_chars_analytic().cell(ci).states[s].mean_na);
  }
}

TEST(FailpointInjection, DelayActionOnlySlowsTheSite) {
  const netlist::Netlist nl = test_netlist(20);
  std::stringstream buf;
  const ScopedFailpoint fp("netlist.io.write", FailpointAction::kDelay, SIZE_MAX, 1);
  netlist::save_netlist(nl, buf);  // stream overload has no failpoint; sanity only
  const std::string path = ::testing::TempDir() + "/fp_delay.rgnl";
  netlist::save_netlist(nl, path);  // fires with kDelay: sleeps, then succeeds
  EXPECT_GE(Failpoints::hits("netlist.io.write"), 1u);
  const netlist::Netlist loaded = netlist::load_netlist(mini_library(), path);
  EXPECT_EQ(loaded.size(), nl.size());
}

}  // namespace
}  // namespace rgleak
