// Run control through the real call paths: cancellation latency through the
// thread pool under an injected per-task delay, the exact estimator draining
// within one chunk, and the budgeted estimator walking the degradation
// ladder. The *Concurrent* tests also run under TSan via
// scripts/tsan_check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "../test_util.h"
#include "core/estimators.h"
#include "core/leakage_estimator.h"
#include "core/method_cost.h"
#include "core/random_gate.h"
#include "netlist/random_circuit.h"
#include "placement/placement.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/run_control.h"
#include "util/thread_pool.h"

namespace rgleak {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;
using util::FailpointAction;
using util::RunControl;
using util::ScopedFailpoint;
using util::StopReason;
using util::ThreadPool;

netlist::UsageHistogram test_usage() {
  netlist::UsageHistogram u;
  u.alphas.assign(mini_library().size(), 0.0);
  u.alphas[0] = 0.6;
  u.alphas[1] = 0.4;
  return u;
}

placement::Placement make_placement(const netlist::Netlist& nl, std::size_t rows,
                                    std::size_t cols) {
  placement::Floorplan fp;
  fp.rows = rows;
  fp.cols = cols;
  fp.site_w_nm = 1500.0;
  fp.site_h_nm = 1500.0;
  return placement::Placement(&nl, fp);
}

TEST(RunControlConcurrent, CancellationLatencyBoundedDespiteDelayedTasks) {
  // A task-level delay failpoint must not stall cancellation beyond one
  // chunk: workers finish the index they hold (delay included) and then see
  // the stop before claiming another.
  ThreadPool pool(3);
  RunControl run;
  const ScopedFailpoint fp("thread_pool.task", FailpointAction::kDelay, SIZE_MAX, 2);
  std::atomic<int> executed{0};
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    run.request_stop();
  });
  EXPECT_THROW(
      pool.parallel_for(100000, [&](std::size_t) { executed.fetch_add(1); }, &run),
      DeadlineExceeded);
  stopper.join();
  // With ~2 ms per index and 3 workers, an unbounded drain would execute all
  // 100000 indices; one-chunk latency means only a handful ran.
  EXPECT_LT(executed.load(), 1000);
  EXPECT_EQ(run.reason(), StopReason::kCancelled);
}

TEST(RunControlConcurrent, ExactEstimatorDrainsWithinOneBatch) {
  // 64x64 sites: the FFT path runs type-pair batches through the pool; a
  // pre-stopped control must cancel before any batch completes the job.
  math::Rng gen(31);
  const std::size_t rows = 64, cols = 64;
  const netlist::Netlist nl =
      generate_random_circuit(mini_library(), test_usage(), rows * cols, gen);
  const placement::Placement pl = make_placement(nl, rows, cols);
  const core::ExactEstimator exact(mini_chars_analytic(), 0.5,
                                   core::CorrelationMode::kAnalytic);

  RunControl run;
  run.request_stop();
  core::ExactOptions opts;
  opts.threads = 3;
  opts.run = &run;
  EXPECT_THROW(exact.estimate(pl, opts), DeadlineExceeded);
}

TEST(RunControl, BudgetedEstimatorDegradesWhenCostModelSaysTooSlow) {
  math::Rng gen(32);
  const std::size_t rows = 24, cols = 24;
  const netlist::Netlist nl =
      generate_random_circuit(mini_library(), test_usage(), rows * cols, gen);
  const placement::Placement pl = make_placement(nl, rows, cols);
  const core::ExactEstimator exact(mini_chars_analytic(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  const core::RandomGate rg(mini_chars_analytic(), test_usage(), 0.5,
                            core::CorrelationMode::kAnalytic);

  // Generous budget: the exact rung fits and answers; no degradation.
  {
    const core::LeakageEstimate e = core::estimate_placed_budgeted(
        exact, rg, pl, 60.0, core::CostModel::defaults());
    EXPECT_TRUE(e.method == "exact_fft" || e.method == "exact_direct") << e.method;
    EXPECT_TRUE(e.degradation.empty()) << e.degradation;
  }

  // Microscopic budget: every predicted rung is over budget, so the O(1)
  // integral answers and the trail names each skipped rung.
  {
    const core::LeakageEstimate e = core::estimate_placed_budgeted(
        exact, rg, pl, 1e-7, core::CostModel::defaults());
    EXPECT_TRUE(e.method == "integral_polar" || e.method == "integral_rect") << e.method;
    EXPECT_NE(e.degradation.find("predicted"), std::string::npos) << e.degradation;
    EXPECT_NE(e.degradation.find("linear"), std::string::npos) << e.degradation;
    EXPECT_GT(e.mean_na, 0.0);
    EXPECT_GT(e.sigma_na, 0.0);
  }
}

TEST(RunControl, MispredictedRungIsCancelledAtDeadlineAndNextRungAnswers) {
  // Calibrate a lying cost model that claims the exact path is nearly free;
  // the armed deadline then cancels the rung mid-flight and the ladder moves
  // on, recording the misprediction.
  math::Rng gen(33);
  const std::size_t rows = 48, cols = 48;
  const netlist::Netlist nl =
      generate_random_circuit(mini_library(), test_usage(), rows * cols, gen);
  const placement::Placement pl = make_placement(nl, rows, cols);
  const core::ExactEstimator exact(mini_chars_analytic(), 0.5,
                                   core::CorrelationMode::kAnalytic);
  const core::RandomGate rg(mini_chars_analytic(), test_usage(), 0.5,
                            core::CorrelationMode::kAnalytic);

  core::CostModel lying = core::CostModel::defaults();
  lying.calibrate("fft", rows * cols, 1e-12);
  lying.calibrate("linear", rows * cols, 1e-12);
  // Delay every trial of the exact path so the 1 ms budget expires inside it.
  const ScopedFailpoint fp("thread_pool.task", FailpointAction::kDelay, SIZE_MAX, 2);
  const core::LeakageEstimate e =
      core::estimate_placed_budgeted(exact, rg, pl, 1e-3, lying);
  EXPECT_TRUE(e.method == "integral_polar" || e.method == "integral_rect") << e.method;
  EXPECT_NE(e.degradation.find("cancelled at deadline"), std::string::npos) << e.degradation;
}

TEST(RunControl, BudgetedEstimatorFacadeReportsMethodAndDegradation) {
  core::DesignCharacteristics d;
  d.usage = test_usage();
  d.gate_count = 5000;
  d.width_nm = 2.0e6;
  d.height_nm = 2.0e6;

  core::EstimatorConfig cfg;
  cfg.method = core::EstimationMethod::kLinear;
  cfg.time_budget_s = 1e-7;  // linear cannot fit; must degrade to integral
  const core::LeakageEstimator estimator(mini_chars_analytic(), cfg);
  const core::LeakageEstimate e = estimator.estimate(d);
  EXPECT_TRUE(e.method == "integral_polar" || e.method == "integral_rect") << e.method;
  EXPECT_NE(e.degradation.find("linear"), std::string::npos) << e.degradation;

  // Without a budget the same request runs the linear rung and reports it.
  cfg.time_budget_s = 0.0;
  const core::LeakageEstimator unbudgeted(mini_chars_analytic(), cfg);
  const core::LeakageEstimate full = unbudgeted.estimate(d);
  EXPECT_EQ(full.method, "linear");
  EXPECT_TRUE(full.degradation.empty());
}

TEST(RunControl, CharacterizersHonorStopRequests) {
  RunControl run;
  run.request_stop();
  charlib::AnalyticCharOptions aopts;
  aopts.run = &run;
  EXPECT_THROW(
      charlib::characterize_analytic(mini_library(), rgleak::testing::test_process(), aopts),
      DeadlineExceeded);
  charlib::McCharOptions mopts;
  mopts.samples = 100;
  mopts.run = &run;
  EXPECT_THROW(
      charlib::characterize_monte_carlo(mini_library(), rgleak::testing::test_process(), mopts),
      DeadlineExceeded);
}

}  // namespace
}  // namespace rgleak
