// The batch orchestrator against synthetic executors: fault isolation,
// retry/degrade/backoff mechanics (on a FakeClock — zero real sleeping),
// budget exhaustion, stop semantics, resume skipping, watchdog deadlines,
// and deterministic load shedding.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "service/batch_runner.h"
#include "util/backoff.h"
#include "util/clock.h"
#include "util/error.h"
#include "util/run_control.h"

namespace rgleak::service {
namespace {

/// Executor driven by a lambda; records every (job id, degrade) call.
class FakeExecutor : public Executor {
 public:
  using Fn = std::function<JobOutput(const JobSpec&, const util::RunControl*, int)>;
  explicit FakeExecutor(Fn fn) : fn_(std::move(fn)) {}

  JobOutput execute(const JobSpec& job, const util::RunControl* watchdog, int degrade) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      calls_.emplace_back(job.id, degrade);
    }
    return fn_(job, watchdog, degrade);
  }

  std::vector<std::pair<std::string, int>> calls() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return calls_;
  }
  std::vector<int> degrades_for(const std::string& id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<int> out;
    for (const auto& c : calls_)
      if (c.first == id) out.push_back(c.second);
    return out;
  }

 private:
  Fn fn_;
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, int>> calls_;
};

JobSpec job(const std::string& id) {
  JobSpec j;
  j.id = id;
  j.kind = "test";
  return j;
}

JobOutput ok_output(double mean) {
  JobOutput out;
  out.mean_na = mean;
  out.sigma_na = mean / 10.0;
  out.method = "fake";
  return out;
}

TEST(BatchRunner, AllJobsSucceedAndAreJournaled) {
  FakeExecutor exec([](const JobSpec& j, const util::RunControl*, int) {
    return ok_output(j.id == "a" ? 1.0 : 2.0);
  });
  Journal journal = Journal::open("");
  util::FakeClock clock;
  BatchOptions opts;
  opts.workers = 2;
  opts.clock = &clock;
  const BatchSummary s = run_batch({job("a"), job("b"), job("c")}, exec, journal, opts);

  EXPECT_EQ(s.total, 3u);
  EXPECT_EQ(s.succeeded, 3u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.accounted(), s.total);
  EXPECT_FALSE(s.stopped);
  EXPECT_EQ(journal.size(), 3u);
  const auto records = journal.records();
  EXPECT_EQ(records.at("a").status, JobStatus::kSucceeded);
  EXPECT_EQ(records.at("a").attempts, 1);
  EXPECT_EQ(records.at("a").mean_na, 1.0);
  EXPECT_EQ(records.at("a").method, "fake");
  EXPECT_EQ(clock.total_slept_ms(), 0.0);  // no retries, no backoff
}

TEST(BatchRunner, PermanentFailureIsTerminalOnTheFirstAttempt) {
  FakeExecutor exec([](const JobSpec&, const util::RunControl*, int) -> JobOutput {
    throw ConfigError("unknown method 'bogus'");
  });
  Journal journal = Journal::open("");
  util::FakeClock clock;
  BatchOptions opts;
  opts.clock = &clock;
  opts.retry.max_attempts = 5;  // irrelevant: config errors never retry
  // Asserts on exec.calls(), recorded in this process: pin in-process even
  // when the environment (CI's process-isolation job) forces sandboxing.
  opts.isolate = ExecIsolation::kInProcess;
  const BatchSummary s = run_batch({job("bad")}, exec, journal, opts);

  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(exec.calls().size(), 1u);
  const JobRecord rec = journal.records().at("bad");
  EXPECT_EQ(rec.status, JobStatus::kFailed);
  EXPECT_EQ(rec.attempts, 1);
  EXPECT_NE(rec.error.find("\"error\":\"config\""), std::string::npos) << rec.error;
  EXPECT_EQ(clock.total_slept_ms(), 0.0);
}

TEST(BatchRunner, RetryableFailureWalksTheDegradeLadderOnTheExactBackoffSchedule) {
  // Fails at degrade 0 and 1, succeeds at 2: attempts = 3, retries = 2, and
  // the two backoff sleeps must match the job's deterministic jitter stream.
  FakeExecutor exec([](const JobSpec&, const util::RunControl*, int degrade) {
    if (degrade < 2) throw NumericalError("transient nan");
    return ok_output(42.0);
  });
  Journal journal = Journal::open("");
  util::FakeClock clock;
  BatchOptions opts;
  opts.clock = &clock;
  opts.retry.max_attempts = 4;
  opts.jitter_seed = 0xfeedULL;
  opts.isolate = ExecIsolation::kInProcess;  // asserts on exec.degrades_for()
  const BatchSummary s = run_batch({job("flaky")}, exec, journal, opts);

  EXPECT_EQ(s.succeeded, 1u);
  EXPECT_EQ(s.retries, 2u);
  const JobRecord rec = journal.records().at("flaky");
  EXPECT_EQ(rec.status, JobStatus::kSucceeded);
  EXPECT_EQ(rec.attempts, 3);
  EXPECT_TRUE(rec.error.empty());  // success clears the last attempt's error
  EXPECT_EQ(exec.degrades_for("flaky"), (std::vector<int>{0, 1, 2}));

  // Reproduce the schedule the runner must have drawn: per-job seed is
  // jitter_seed ^ FNV-1a(id), and sleeps are chunked at <= 25 ms.
  util::BackoffState state =
      util::backoff_state_for(opts.jitter_seed ^ util::backoff_job_hash("flaky"));
  double expected = 0.0;
  for (int i = 0; i < 2; ++i) expected += util::next_backoff_ms(opts.retry.backoff, state);
  EXPECT_NEAR(clock.total_slept_ms(), expected, 1e-6);
  for (double chunk : clock.sleeps()) EXPECT_LE(chunk, 25.0);  // cancellable chunks
}

TEST(BatchRunner, ExhaustedRetryBudgetMakesFailuresTerminal) {
  FakeExecutor exec([](const JobSpec&, const util::RunControl*, int) -> JobOutput {
    throw NumericalError("always fails");
  });
  Journal journal = Journal::open("");
  util::FakeClock clock;
  BatchOptions opts;
  opts.clock = &clock;
  opts.retry.max_attempts = 3;
  opts.retry.batch_retry_budget = 1;  // one retry for the whole batch
  const BatchSummary s = run_batch({job("a"), job("b")}, exec, journal, opts);

  EXPECT_EQ(s.failed, 2u);
  EXPECT_EQ(s.retries, 1u);
  const auto records = journal.records();
  // workers=1 runs jobs in order: "a" burns the budget (2 attempts), "b" is
  // denied its first retry (1 attempt).
  EXPECT_EQ(records.at("a").attempts, 2);
  EXPECT_EQ(records.at("b").attempts, 1);
}

TEST(BatchRunner, ForeignExceptionIsRetriedAndRecordedAsInternal) {
  FakeExecutor exec([](const JobSpec&, const util::RunControl*, int) -> JobOutput {
    throw std::runtime_error("something foreign");
  });
  Journal journal = Journal::open("");
  util::FakeClock clock;
  BatchOptions opts;
  opts.clock = &clock;
  opts.retry.max_attempts = 2;
  const BatchSummary s = run_batch({job("alien")}, exec, journal, opts);

  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.retries, 1u);  // unclassifiable = assumed transient
  const JobRecord rec = journal.records().at("alien");
  EXPECT_EQ(rec.attempts, 2);
  EXPECT_NE(rec.error.find("\"error\":\"internal\""), std::string::npos) << rec.error;
}

TEST(BatchRunner, BatchStopAbandonsRemainingJobsWithoutRecords) {
  util::RunControl run;
  FakeExecutor exec([&run](const JobSpec& j, const util::RunControl* watchdog, int) {
    if (j.id == "first") {
      run.request_stop();
      // The per-job watchdog is parent-linked to the batch stop source.
      EXPECT_TRUE(watchdog->should_stop());
    }
    return ok_output(1.0);
  });
  Journal journal = Journal::open("");
  util::FakeClock clock;
  BatchOptions opts;
  opts.clock = &clock;
  opts.run = &run;
  // The lambda stops the batch through shared memory: in-process semantics.
  opts.isolate = ExecIsolation::kInProcess;
  const BatchSummary s = run_batch({job("first"), job("second"), job("third")}, exec, journal, opts);

  EXPECT_TRUE(s.stopped);
  EXPECT_EQ(s.succeeded, 1u);  // "first" finished its attempt and keeps its record
  EXPECT_EQ(s.interrupted, 2u);  // the rest: no record, will re-run on resume
  EXPECT_EQ(s.accounted(), 3u);
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_FALSE(journal.has("second"));
  EXPECT_FALSE(journal.has("third"));
}

TEST(BatchRunner, FailureDuringStopIsInterruptedNotFailed) {
  // A failure observed while the batch is stopping is indistinguishable from
  // a cancellation side effect: the job must re-run cleanly on resume.
  util::RunControl run;
  FakeExecutor exec([&run](const JobSpec&, const util::RunControl*, int) -> JobOutput {
    run.request_stop();
    throw NumericalError("possibly a cancellation artifact");
  });
  Journal journal = Journal::open("");
  util::FakeClock clock;
  BatchOptions opts;
  opts.clock = &clock;
  opts.run = &run;
  opts.isolate = ExecIsolation::kInProcess;  // stop is requested via shared memory
  const BatchSummary s = run_batch({job("only")}, exec, journal, opts);

  EXPECT_TRUE(s.stopped);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.interrupted, 1u);
  EXPECT_EQ(journal.size(), 0u);
}

TEST(BatchRunner, AlreadyJournaledJobsAreSkippedOnResume) {
  Journal journal = Journal::open("");
  JobRecord done;
  done.id = "a";
  done.status = JobStatus::kSucceeded;
  done.attempts = 1;
  done.mean_na = 7.0;
  journal.append(done);

  FakeExecutor exec(
      [](const JobSpec&, const util::RunControl*, int) { return ok_output(99.0); });
  util::FakeClock clock;
  BatchOptions opts;
  opts.clock = &clock;
  opts.isolate = ExecIsolation::kInProcess;  // asserts on exec.calls()
  const BatchSummary s = run_batch({job("a"), job("b")}, exec, journal, opts);

  EXPECT_EQ(s.skipped, 1u);
  EXPECT_EQ(s.succeeded, 1u);
  ASSERT_EQ(exec.calls().size(), 1u);
  EXPECT_EQ(exec.calls()[0].first, "b");                 // "a" never re-ran
  EXPECT_EQ(journal.records().at("a").mean_na, 7.0);     // and kept its record
}

TEST(BatchRunner, WatchdogDeadlineProducesAStructuredDeadlineFailure) {
  // The executor honours the watchdog like a real kernel: polls until told to
  // stop. With a tiny per-attempt deadline the poll throws DeadlineExceeded,
  // which is terminal here because max_attempts = 1.
  FakeExecutor exec([](const JobSpec&, const util::RunControl* watchdog, int) -> JobOutput {
    for (;;) {
      watchdog->poll("test.job");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  Journal journal = Journal::open("");
  BatchOptions opts;
  opts.retry.max_attempts = 1;
  opts.job_deadline_s = 0.02;
  const BatchSummary s = run_batch({job("wedged")}, exec, journal, opts);

  EXPECT_EQ(s.failed, 1u);
  EXPECT_FALSE(s.stopped);  // the batch outlives the wedged job
  const JobRecord rec = journal.records().at("wedged");
  EXPECT_EQ(rec.status, JobStatus::kFailed);
  EXPECT_NE(rec.error.find("\"error\":\"deadline\""), std::string::npos) << rec.error;
}

TEST(BatchRunner, BlockPolicyAppliesBackpressureAndNeverSheds) {
  FakeExecutor exec(
      [](const JobSpec&, const util::RunControl*, int) { return ok_output(1.0); });
  Journal journal = Journal::open("");
  util::FakeClock clock;
  BatchOptions opts;
  opts.clock = &clock;
  opts.queue_depth = 1;
  opts.shed_policy = ShedPolicy::kBlock;
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 16; ++i) jobs.push_back(job("j" + std::to_string(i)));
  const BatchSummary s = run_batch(jobs, exec, journal, opts);

  EXPECT_EQ(s.succeeded, 16u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_LE(s.queue_high_watermark, 1u);
}

TEST(BatchRunner, ConcurrentShedJobsGetStructuredRecords) {
  // workers=1, capacity 1, reject-new: the first job blocks until a later job
  // has been shed (only a shed can journal "b" or "c" while the single worker
  // is still busy), so at least one shed record is guaranteed and the batch
  // can never deadlock.
  Journal journal = Journal::open("");
  FakeExecutor exec([&journal](const JobSpec& j, const util::RunControl*, int) {
    if (j.id == "slow") {
      while (!journal.has("b") && !journal.has("c"))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return ok_output(1.0);
  });
  BatchOptions opts;
  opts.queue_depth = 1;
  opts.shed_policy = ShedPolicy::kRejectNew;
  // The "slow" lambda watches the journal from inside the executor — shared
  // memory with the batch, so in-process only.
  opts.isolate = ExecIsolation::kInProcess;
  const BatchSummary s = run_batch({job("slow"), job("b"), job("c")}, exec, journal, opts);

  EXPECT_GE(s.shed, 1u);
  EXPECT_EQ(s.succeeded + s.shed, 3u);
  EXPECT_EQ(s.accounted(), 3u);
  EXPECT_EQ(journal.size(), 3u);  // every job terminal: ok or shed
  bool saw_shed_record = false;
  for (const auto& [id, rec] : journal.records()) {
    if (rec.status != JobStatus::kShed) continue;
    saw_shed_record = true;
    EXPECT_NE(rec.error.find("\"error\":\"shed\""), std::string::npos) << id << ": " << rec.error;
    EXPECT_NE(rec.error.find("reject-new"), std::string::npos) << rec.error;
  }
  EXPECT_TRUE(saw_shed_record);
}

TEST(BatchRunner, MisconfigurationIsAContractViolation) {
  FakeExecutor exec(
      [](const JobSpec&, const util::RunControl*, int) { return ok_output(1.0); });
  Journal journal = Journal::open("");
  BatchOptions opts;
  opts.retry.max_attempts = 0;
  EXPECT_THROW(run_batch({job("a")}, exec, journal, opts), ContractViolation);
  opts.retry.max_attempts = 1;
  opts.queue_depth = 0;
  EXPECT_THROW(run_batch({job("a")}, exec, journal, opts), ContractViolation);
}

}  // namespace
}  // namespace rgleak::service
