// Retry classification must follow the error taxonomy, and the shared batch
// budget must hand out exactly as many retries as configured under
// contention.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "service/retry.h"
#include "util/error.h"

namespace rgleak::service {
namespace {

TEST(Retryable, FollowsTheTaxonomy) {
  // Transient-looking failures retry (with method degradation)...
  EXPECT_TRUE(retryable(ErrorCode::kNumerical));
  EXPECT_TRUE(retryable(ErrorCode::kDeadline));
  EXPECT_TRUE(retryable(ErrorCode::kIo));
  // ...while failures the input guarantees to repeat are permanent, and a
  // contract violation is a bug that retrying would only hide.
  EXPECT_FALSE(retryable(ErrorCode::kParse));
  EXPECT_FALSE(retryable(ErrorCode::kConfig));
  EXPECT_FALSE(retryable(ErrorCode::kContract));
}

TEST(RetryBudget, HandsOutExactlyTheBudget) {
  RetryBudget budget(3);
  EXPECT_EQ(budget.remaining(), 3u);
  EXPECT_TRUE(budget.try_take());
  EXPECT_TRUE(budget.try_take());
  EXPECT_TRUE(budget.try_take());
  EXPECT_FALSE(budget.try_take());
  EXPECT_FALSE(budget.try_take());  // stays denied
  EXPECT_EQ(budget.remaining(), 0u);
}

TEST(RetryBudget, ZeroBudgetDeniesTheFirstRetry) {
  RetryBudget budget(0);
  EXPECT_FALSE(budget.try_take());
}

TEST(RetryBudget, ConcurrentTakersNeverOverdraw) {
  constexpr std::size_t kBudget = 100;
  constexpr int kThreads = 8;
  constexpr int kAttemptsPerThread = 50;  // 400 attempts chasing 100 retries
  RetryBudget budget(kBudget);
  std::atomic<std::size_t> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        if (budget.try_take()) granted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(granted.load(), kBudget);
  EXPECT_EQ(budget.remaining(), 0u);
}

}  // namespace
}  // namespace rgleak::service
