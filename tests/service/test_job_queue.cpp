// The bounded MPMC job queue: backpressure, both shed policies, close
// semantics, and a TSan-covered concurrent accounting test (run by
// scripts/tsan_check.sh via the *Concurrent* filter).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/job_queue.h"
#include "util/error.h"

namespace rgleak::service {
namespace {

JobSpec job(const std::string& id) {
  JobSpec j;
  j.id = id;
  j.kind = "test";
  return j;
}

TEST(ShedPolicyParse, AcceptsTheThreeNamesAndRejectsTheRest) {
  EXPECT_EQ(parse_shed_policy("block"), ShedPolicy::kBlock);
  EXPECT_EQ(parse_shed_policy("reject-new"), ShedPolicy::kRejectNew);
  EXPECT_EQ(parse_shed_policy("drop-oldest"), ShedPolicy::kDropOldest);
  EXPECT_THROW(parse_shed_policy("yolo"), ConfigError);
  EXPECT_THROW(parse_shed_policy(""), ConfigError);
}

TEST(JobQueue, FifoWithinCapacity) {
  JobQueue q(4, ShedPolicy::kBlock);
  for (const char* id : {"a", "b", "c"}) EXPECT_TRUE(q.push(job(id)).queued);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.high_watermark(), 3u);
  EXPECT_EQ(q.pop()->id, "a");
  EXPECT_EQ(q.pop()->id, "b");
  EXPECT_EQ(q.pop()->id, "c");
}

TEST(JobQueue, RejectNewShedsTheIncomingJob) {
  JobQueue q(2, ShedPolicy::kRejectNew);
  EXPECT_TRUE(q.push(job("a")).queued);
  EXPECT_TRUE(q.push(job("b")).queued);
  const JobQueue::PushResult r = q.push(job("c"));
  EXPECT_FALSE(r.queued);
  ASSERT_TRUE(r.shed.has_value());
  EXPECT_EQ(r.shed->id, "c");
  EXPECT_EQ(q.shed_count(), 1u);
  EXPECT_EQ(q.pop()->id, "a");  // queue content unchanged
}

TEST(JobQueue, DropOldestEvictsTheHeadToAdmit) {
  JobQueue q(2, ShedPolicy::kDropOldest);
  q.push(job("a"));
  q.push(job("b"));
  const JobQueue::PushResult r = q.push(job("c"));
  EXPECT_TRUE(r.queued);
  ASSERT_TRUE(r.shed.has_value());
  EXPECT_EQ(r.shed->id, "a");
  EXPECT_EQ(q.pop()->id, "b");
  EXPECT_EQ(q.pop()->id, "c");
}

TEST(JobQueue, CloseDrainsThenEndsAndRefusesNewPushes) {
  JobQueue q(4, ShedPolicy::kBlock);
  q.push(job("a"));
  q.close();
  q.close();  // idempotent
  const JobQueue::PushResult r = q.push(job("b"));
  EXPECT_FALSE(r.queued);
  EXPECT_TRUE(r.closed);
  EXPECT_FALSE(r.shed.has_value());  // refused, not shed: nothing to record
  EXPECT_EQ(q.pop()->id, "a");
  EXPECT_FALSE(q.pop().has_value());
}

TEST(JobQueue, ConcurrentBlockingPushWaitsForSpace) {
  JobQueue q(1, ShedPolicy::kBlock);
  EXPECT_TRUE(q.push(job("a")).queued);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(job("b")).queued);  // blocks until the pop below
    pushed.store(true);
  });
  EXPECT_EQ(q.pop()->id, "a");
  EXPECT_EQ(q.pop()->id, "b");  // blocks until the producer lands it
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(JobQueue, ConcurrentCloseWakesBlockedProducerAndConsumers) {
  JobQueue q(1, ShedPolicy::kBlock);
  q.push(job("a"));
  std::thread producer([&] {
    // Blocked on the full queue until either the consumer makes space or
    // close() wakes it — the interleaving decides which, so the assertion is
    // only that exactly one outcome happened and the push returned at all.
    const JobQueue::PushResult r = q.push(job("b"));
    EXPECT_NE(r.queued, r.closed);
    EXPECT_FALSE(r.shed.has_value());
  });
  std::thread consumer([&] {
    while (q.pop().has_value()) {
    }
  });
  q.close();
  producer.join();
  consumer.join();
}

// Accounting under contention: with P producers and C consumers, every job is
// either consumed exactly once or reported shed exactly once, the queue
// drains empty, and nothing deadlocks — under every policy.
void concurrent_accounting(ShedPolicy policy) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 200;
  JobQueue q(8, policy);

  std::mutex shed_mutex;
  std::set<std::string> shed;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const JobQueue::PushResult r = q.push(job(std::to_string(p) + ":" + std::to_string(i)));
        if (r.shed.has_value()) {
          std::lock_guard<std::mutex> lock(shed_mutex);
          EXPECT_TRUE(shed.insert(r.shed->id).second) << "job shed twice";
        }
      }
    });
  }

  std::mutex popped_mutex;
  std::set<std::string> popped;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto j = q.pop()) {
        std::lock_guard<std::mutex> lock(popped_mutex);
        EXPECT_TRUE(popped.insert(j->id).second) << "job consumed twice";
      }
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.shed_count(), shed.size());
  // Disjoint, and together they account for every pushed job.
  for (const std::string& id : shed) EXPECT_EQ(popped.count(id), 0u) << id;
  EXPECT_EQ(popped.size() + shed.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  EXPECT_LE(q.high_watermark(), q.capacity());
}

TEST(JobQueue, ConcurrentAccountingBlock) { concurrent_accounting(ShedPolicy::kBlock); }
TEST(JobQueue, ConcurrentAccountingRejectNew) { concurrent_accounting(ShedPolicy::kRejectNew); }
TEST(JobQueue, ConcurrentAccountingDropOldest) { concurrent_accounting(ShedPolicy::kDropOldest); }

}  // namespace
}  // namespace rgleak::service
