// util::trace spans end-to-end: record shape, crc trailer (journal
// convention), thread-local nesting, exception outcomes, and — the part that
// justifies the fd/atomics design — spans emitted by forked sandbox children
// landing in the same file, correctly parented to the supervisor-side
// attempt span. Lives in service_tests because the fork coverage drives a
// real ExecIsolation::kProcess batch.

#include "util/trace.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/batch_runner.h"
#include "service/executor.h"
#include "service/journal.h"
#include "service/jsonio.h"
#include "util/crc32.h"

namespace rgleak::service {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

// Verifies the crc trailer exactly as journal readers do, then parses.
JsonObject parse_span(const std::string& line) {
  constexpr std::size_t kCrcSuffixLen = 18;  // ,"crc":"xxxxxxxx"}
  EXPECT_GT(line.size(), kCrcSuffixLen);
  EXPECT_EQ(line.compare(line.size() - kCrcSuffixLen, 8, ",\"crc\":\""), 0);
  std::uint32_t want = 0;
  EXPECT_TRUE(util::parse_crc32_hex(line.substr(line.size() - 10, 8), want));
  const std::string base = line.substr(0, line.size() - kCrcSuffixLen) + "}";
  EXPECT_EQ(util::crc32(base), want) << line;
  return parse_json_object(line, "trace", 1);
}

class TraceFile {
 public:
  explicit TraceFile(const char* name) : path_(temp_path(name)) {
    std::remove(path_.c_str());
    util::trace::open(path_);
  }
  ~TraceFile() {
    util::trace::close();
    std::remove(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(TraceSpan, NestedSpansShareAParentAndCarryCrc) {
  TraceFile trace("rgleak_trace_nested.jsonl");
  {
    util::trace::Span outer("attempt", "job-1", 2);
    { util::trace::Span inner("phase.parse", "job-1"); }
    { util::trace::Span inner2("phase.estimate", "job-1"); }
  }
  util::trace::close();

  const std::vector<std::string> lines = read_lines(trace.path());
  ASSERT_EQ(lines.size(), 3u);
  // Spans are emitted at destruction: children precede their parent.
  const JsonObject inner = parse_span(lines[0]);
  const JsonObject inner2 = parse_span(lines[1]);
  const JsonObject outer = parse_span(lines[2]);
  EXPECT_EQ(outer.at("name"), "attempt");
  EXPECT_EQ(outer.at("job"), "job-1");
  EXPECT_EQ(outer.at("attempt"), "2");
  EXPECT_EQ(outer.at("parent"), "");
  EXPECT_EQ(outer.at("outcome"), "ok");
  EXPECT_EQ(inner.at("name"), "phase.parse");
  EXPECT_EQ(inner.at("attempt"), "-1");  // -1 = not an attempt-scoped span
  EXPECT_EQ(inner.at("parent"), outer.at("span"));
  EXPECT_EQ(inner2.at("parent"), outer.at("span"));
  EXPECT_NE(inner.at("span"), inner2.at("span"));
  // Containment in steady-clock ns.
  const long long ot = std::stoll(outer.at("t_ns")), ow = std::stoll(outer.at("wall_ns"));
  const long long it = std::stoll(inner.at("t_ns")), iw = std::stoll(inner.at("wall_ns"));
  EXPECT_GE(it, ot);
  EXPECT_LE(it + iw, ot + ow);
}

TEST(TraceSpan, ExceptionUnwindMarksErrorAndSetOutcomeWins) {
  TraceFile trace("rgleak_trace_outcome.jsonl");
  try {
    util::trace::Span span("failing");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  {
    util::trace::Span span("labelled");
    span.set_outcome("crash");
  }
  util::trace::close();

  const std::vector<std::string> lines = read_lines(trace.path());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(parse_span(lines[0]).at("outcome"), "error");
  EXPECT_EQ(parse_span(lines[1]).at("outcome"), "crash");
}

TEST(TraceSpan, DisarmedSpansWriteNothing) {
  const std::string path = temp_path("rgleak_trace_disarmed.jsonl");
  std::remove(path.c_str());
  util::trace::close();  // ensure disarmed
  { util::trace::Span span("ignored"); }
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
}

class FnExecutor : public Executor {
 public:
  using Fn = std::function<JobOutput(const JobSpec&, const util::RunControl*, int)>;
  explicit FnExecutor(Fn fn) : fn_(std::move(fn)) {}
  JobOutput execute(const JobSpec& job, const util::RunControl* watchdog, int degrade) override {
    return fn_(job, watchdog, degrade);
  }

 private:
  Fn fn_;
};

// The headline cross-process property: a kProcess batch's children emit
// phase spans into the same O_APPEND file, with ids carrying the CHILD pid
// and parents pointing at the SUPERVISOR-side attempt span (the thread-local
// span stack is inherited across fork).
TEST(TraceSpanIsolate, ForkedChildrenParentToSupervisorAttemptSpans) {
  TraceFile trace("rgleak_trace_fork.jsonl");
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 3; ++i) {
    JobSpec j;
    j.id = "trace-" + std::to_string(i);
    j.kind = "synthetic";
    jobs.push_back(j);
  }
  FnExecutor exec([](const JobSpec& job, const util::RunControl* wd, int) {
    wd->beat();
    const util::trace::Span span("phase.estimate", job.id);
    JobOutput out;
    out.mean_na = 1.0;
    out.sigma_na = 0.1;
    out.method = "synthetic";
    return out;
  });
  Journal journal = Journal::open("");
  BatchOptions opts;
  opts.isolate = ExecIsolation::kProcess;
  opts.workers = 2;
  const BatchSummary s = run_batch(jobs, exec, journal, opts);
  util::trace::close();
  ASSERT_EQ(s.succeeded, 3u);

  std::map<std::string, JsonObject> by_id;
  for (const std::string& line : read_lines(trace.path())) {
    JsonObject obj = parse_span(line);
    by_id.emplace(obj.at("span"), std::move(obj));
  }

  const std::string super_pid = std::to_string(static_cast<long>(::getpid()));
  std::size_t attempts = 0, child_phases = 0;
  for (const auto& [id, obj] : by_id) {
    const std::string pid = id.substr(0, id.find(':'));
    if (obj.at("name") == "attempt") {
      ++attempts;
      EXPECT_EQ(pid, super_pid) << "attempt spans belong to the supervisor";
      EXPECT_EQ(obj.at("outcome"), "ok");
    } else if (obj.at("name") == "phase.estimate") {
      ++child_phases;
      EXPECT_NE(pid, super_pid) << "phase spans must carry the child pid";
      // Parent is a supervisor-side attempt span for the same job, and the
      // child interval nests inside it (steady clock is host-wide).
      const auto parent = by_id.find(obj.at("parent"));
      ASSERT_NE(parent, by_id.end()) << "parent ref must resolve within the file";
      EXPECT_EQ(parent->second.at("name"), "attempt");
      EXPECT_EQ(parent->second.at("job"), obj.at("job"));
      const long long pt = std::stoll(parent->second.at("t_ns"));
      const long long pw = std::stoll(parent->second.at("wall_ns"));
      const long long ct = std::stoll(obj.at("t_ns"));
      const long long cw = std::stoll(obj.at("wall_ns"));
      EXPECT_GE(ct, pt);
      EXPECT_LE(ct + cw, pt + pw);
    }
  }
  EXPECT_EQ(attempts, 3u);
  EXPECT_EQ(child_phases, 3u);
}

}  // namespace
}  // namespace rgleak::service
