// The process-isolation supervisor: a sandboxed child's success and typed
// errors round-trip the pipe byte-faithfully, signal deaths are contained and
// classified as CrashError, heartbeats bridge the process boundary, and a
// blind (non-polling) child is escalated SIGTERM -> SIGKILL on stop. Every
// test here forks a real child (no mocks): these are the contracts the batch
// layer builds crash containment on. TSan runs need die_after_fork=0 and ASan
// runs need handle_segv=0:handle_abort=0 (see scripts/tsan_check.sh and
// scripts/asan_check.sh).

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "service/batch_runner.h"
#include "service/journal.h"
#include "service/subprocess.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/run_control.h"

namespace rgleak::service {
namespace {

class FnExecutor : public Executor {
 public:
  using Fn = std::function<JobOutput(const JobSpec&, const util::RunControl*, int)>;
  explicit FnExecutor(Fn fn) : fn_(std::move(fn)) {}
  JobOutput execute(const JobSpec& job, const util::RunControl* watchdog, int degrade) override {
    return fn_(job, watchdog, degrade);
  }

 private:
  Fn fn_;
};

JobSpec job(const std::string& id) {
  JobSpec j;
  j.id = id;
  j.kind = "test";
  return j;
}

JobOutput ok_output() {
  JobOutput out;
  out.mean_na = 1.0;
  out.sigma_na = 0.1;
  out.method = "fake";
  return out;
}

JobOutput run_isolated(FnExecutor::Fn fn, const JobSpec& spec,
                       util::RunControl& watchdog,
                       SubprocessOptions opts = SubprocessOptions{}) {
  FnExecutor exec(std::move(fn));
  return run_job_in_subprocess(exec, spec, &watchdog, 0, opts);
}

TEST(SubprocessIsolate, SupportedOnThisPlatform) {
  EXPECT_TRUE(subprocess_supported());
}

TEST(SubprocessIsolate, SuccessRoundTripsEveryOutputField) {
  util::RunControl watchdog;
  const JobOutput out = run_isolated(
      [](const JobSpec&, const util::RunControl*, int) {
        JobOutput o;
        o.mean_na = 1234.5678901234567;  // 17 significant digits must survive
        o.sigma_na = 0.0625;
        o.method = "exact_fft";
        o.degradation = "mem: exact_fft->linear";
        return o;
      },
      job("ok"), watchdog);
  EXPECT_DOUBLE_EQ(out.mean_na, 1234.5678901234567);
  EXPECT_DOUBLE_EQ(out.sigma_na, 0.0625);
  EXPECT_EQ(out.method, "exact_fft");
  EXPECT_EQ(out.degradation, "mem: exact_fft->linear");
}

TEST(SubprocessIsolate, ChildHeartbeatsReachTheParentWatchdog) {
  util::RunControl watchdog;
  const JobOutput out = run_isolated(
      [](const JobSpec&, const util::RunControl* wd, int) {
        for (int i = 0; i < 257; ++i) wd->beat();
        return ok_output();
      },
      job("beats"), watchdog);
  EXPECT_DOUBLE_EQ(out.mean_na, 1.0);
  // The child mirrored its beats into the shared page; the supervisor folded
  // the final count into the parent watchdog on detach.
  EXPECT_GE(watchdog.beats(), 257u);
}

TEST(SubprocessIsolate, TypedErrorRoundTripsWithItsJsonRecord) {
  util::RunControl watchdog;
  try {
    run_isolated(
        [](const JobSpec&, const util::RunControl*, int) -> JobOutput {
          throw NumericalError("variance went negative");
        },
        job("numerical"), watchdog);
    FAIL() << "expected a taxonomy error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNumerical);
    EXPECT_NE(e.message().find("variance went negative"), std::string::npos) << e.message();
    const auto* report = dynamic_cast<const ChildReport*>(&e);
    ASSERT_NE(report, nullptr) << "reconstructed error must carry the child's json";
    EXPECT_NE(report->error_json_line().find("\"error\":\"numerical\""), std::string::npos)
        << report->error_json_line();
  }
}

TEST(SubprocessIsolate, ParseErrorLocationSurvivesTheBoundary) {
  util::RunControl watchdog;
  try {
    run_isolated(
        [](const JobSpec&, const util::RunControl*, int) -> JobOutput {
          throw ParseError("netlist.rgnl", 12, 7, "unknown gate", "NAND");
        },
        job("parse"), watchdog);
    FAIL() << "expected a taxonomy error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParse);
    const auto* report = dynamic_cast<const ChildReport*>(&e);
    ASSERT_NE(report, nullptr);
    // The journal records the child's own error_json line, so the located
    // fields must be present verbatim.
    EXPECT_NE(report->error_json_line().find("\"source\":\"netlist.rgnl\""), std::string::npos)
        << report->error_json_line();
    EXPECT_NE(report->error_json_line().find("\"line\":12"), std::string::npos)
        << report->error_json_line();
  }
}

TEST(SubprocessIsolate, SegvIsContainedAndClassifiedAsCrash) {
  util::RunControl watchdog;
  try {
    run_isolated(
        [](const JobSpec&, const util::RunControl*, int) -> JobOutput {
          std::raise(SIGSEGV);
          return ok_output();
        },
        job("segv"), watchdog);
    FAIL() << "expected CrashError";
  } catch (const CrashError& e) {
    EXPECT_NE(std::string(e.what()).find("SIGSEGV"), std::string::npos) << e.what();
    EXPECT_EQ(e.code(), ErrorCode::kCrash);
  }
}

TEST(SubprocessIsolate, AbortIsContainedAndCapturesTheStderrTail) {
  util::RunControl watchdog;
  try {
    run_isolated(
        [](const JobSpec&, const util::RunControl*, int) -> JobOutput {
          std::fprintf(stderr, "heap corruption detected in arena 3\n");
          std::fflush(stderr);
          std::abort();
        },
        job("abort"), watchdog);
    FAIL() << "expected CrashError";
  } catch (const CrashError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("SIGABRT"), std::string::npos) << what;
    EXPECT_NE(what.find("heap corruption detected in arena 3"), std::string::npos)
        << "crash message must carry the child's stderr tail: " << what;
  }
}

TEST(SubprocessIsolate, CleanTaxonomyExitWithoutRecordReconstructsTheError) {
  util::RunControl watchdog;
  try {
    run_isolated(
        [](const JobSpec&, const util::RunControl*, int) -> JobOutput { _exit(4); },
        job("exit4"), watchdog);
    FAIL() << "expected a taxonomy error";
  } catch (const Error& e) {
    // Exit 4 is the documented numerical exit code; the supervisor maps it
    // back even though the child vanished before writing its record.
    EXPECT_EQ(e.code(), ErrorCode::kNumerical);
    EXPECT_NE(e.message().find("exited with code 4"), std::string::npos) << e.message();
  }
}

TEST(SubprocessIsolate, ForeignExitCodeWithoutRecordIsCrash) {
  util::RunControl watchdog;
  EXPECT_THROW(run_isolated(
                   [](const JobSpec&, const util::RunControl*, int) -> JobOutput { _exit(42); },
                   job("exit42"), watchdog),
               CrashError);
}

TEST(SubprocessIsolate, SilentSuccessExitIsCrashNotSuccess) {
  util::RunControl watchdog;
  // Exit 0 without a result record must never be trusted as success: there is
  // no estimate to report.
  EXPECT_THROW(run_isolated(
                   [](const JobSpec&, const util::RunControl*, int) -> JobOutput { _exit(0); },
                   job("exit0"), watchdog),
               CrashError);
}

TEST(SubprocessIsolate, ForeignExceptionStaysOutsideTheTaxonomy) {
  util::RunControl watchdog;
  try {
    run_isolated(
        [](const JobSpec&, const util::RunControl*, int) -> JobOutput {
          throw std::runtime_error("weird library exception");
        },
        job("foreign"), watchdog);
    FAIL() << "expected an exception";
  } catch (const Error&) {
    FAIL() << "a foreign child exception must NOT become a taxonomy error: the "
              "batch layer classifies foreign exceptions as transient";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("weird library exception"), std::string::npos)
        << e.what();
    const auto* report = dynamic_cast<const ChildReport*>(&e);
    ASSERT_NE(report, nullptr);
    EXPECT_NE(report->error_json_line().find("\"error\":\"internal\""), std::string::npos)
        << report->error_json_line();
  }
}

TEST(SubprocessIsolate, FailpointParamArmsInTheChildOnly) {
  util::RunControl watchdog;
  JobSpec crashy = job("fp");
  crashy.params["failpoint"] = "test.subproc.site:segv";
  EXPECT_THROW(run_isolated(
                   [](const JobSpec&, const util::RunControl*, int) -> JobOutput {
                     RGLEAK_FAILPOINT("test.subproc.site");
                     return ok_output();
                   },
                   crashy, watchdog),
               CrashError);
  // The site was armed (and fired) in the sandboxed child; the parent's
  // registry must be untouched.
  EXPECT_EQ(util::Failpoints::hits("test.subproc.site"), 0u);
  EXPECT_FALSE(util::Failpoints::any_armed());
}

TEST(SubprocessIsolate, BlindChildIsEscalatedTermThenKillOnDeadline) {
  util::RunControl watchdog;
  watchdog.arm_budget(0.2);
  SubprocessOptions opts;
  opts.term_grace_s = 0.2;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    run_isolated(
        [](const JobSpec&, const util::RunControl*, int) -> JobOutput {
          // Signal-blind: never polls the watchdog, ignores the cooperative
          // stop its SIGTERM handler latched. Only SIGKILL ends this.
          for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
        },
        job("blind"), watchdog, opts);
    FAIL() << "expected DeadlineExceeded";
  } catch (const DeadlineExceeded&) {
    // The supervisor's own kill is attributed to the stop, never to a crash.
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(elapsed, 5.0) << "TERM->KILL escalation took too long";
}

TEST(SubprocessIsolate, CooperativeChildReportsTheDeadlineItself) {
  util::RunControl watchdog;
  watchdog.arm_budget(0.15);
  try {
    run_isolated(
        [](const JobSpec&, const util::RunControl* wd, int) -> JobOutput {
          // Polls like the engines do: the forwarded budget expires inside
          // the child, which reports the typed deadline error as a record.
          while (!wd->should_stop())
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          throw wd->make_error("test.coop");
        },
        job("coop"), watchdog);
    FAIL() << "expected DeadlineExceeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadline);
  }
}

TEST(SubprocessIsolate, BatchCrashCapGivesCrashingJobsFewerRetries) {
  FnExecutor exec([](const JobSpec&, const util::RunControl*, int) -> JobOutput {
    std::raise(SIGSEGV);
    return ok_output();
  });
  Journal journal = Journal::open("");
  BatchOptions opts;
  opts.isolate = ExecIsolation::kProcess;
  opts.retry.max_attempts = 4;  // crash cap (1 retry) must bind before this
  opts.retry.backoff.base_ms = 1.0;
  opts.retry.backoff.cap_ms = 2.0;
  const BatchSummary s = run_batch({job("crashy")}, exec, journal, opts);

  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.crashes, 2u) << "initial attempt + exactly one crash retry";
  const JobRecord rec = journal.records().at("crashy");
  EXPECT_EQ(rec.status, JobStatus::kFailed);
  EXPECT_EQ(rec.attempts, 2);
  EXPECT_NE(rec.error.find("\"error\":\"crash\""), std::string::npos) << rec.error;
  EXPECT_NE(rec.error.find("SIGSEGV"), std::string::npos) << rec.error;
}

TEST(SubprocessIsolate, StallMonitorSeesCrossProcessHeartbeats) {
  // A slow but beating child must NOT be flagged as stalled even though all
  // its progress happens on the far side of the process boundary.
  FnExecutor exec([](const JobSpec&, const util::RunControl* wd, int) -> JobOutput {
    const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(450);
    while (std::chrono::steady_clock::now() < until) {
      EXPECT_FALSE(wd->should_stop());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return ok_output();
  });
  Journal journal = Journal::open("");
  BatchOptions opts;
  opts.isolate = ExecIsolation::kProcess;
  opts.retry.max_attempts = 1;
  opts.stall_timeout_s = 0.15;  // shorter than the child's runtime
  const BatchSummary s = run_batch({job("slow-remote")}, exec, journal, opts);

  EXPECT_EQ(s.stalls, 0u);
  EXPECT_EQ(s.succeeded, 1u);
  const JobRecord rec = journal.records().at("slow-remote");
  EXPECT_EQ(rec.status, JobStatus::kSucceeded);
  EXPECT_GT(rec.beats, 0u) << "cross-process heartbeats must be journaled";
}

}  // namespace
}  // namespace rgleak::service
