// Manifest parsing and journal-record round-trips.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "service/job.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace rgleak::service {
namespace {

std::vector<JobSpec> parse(const std::string& text) {
  std::istringstream is(text);
  return parse_manifest(is, "jobs.jsonl");
}

TEST(Manifest, ParsesJobsSkippingBlanksAndComments) {
  const auto jobs = parse(
      "# a comment\n"
      "\n"
      "{\"id\":\"a\",\"kind\":\"mc\",\"trials\":50,\"lib\":\"x.rgchar\"}\n"
      "   \t\n"
      "{\"id\":\"b\",\"kind\":\"estimate\"}\n");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, "a");
  EXPECT_EQ(jobs[0].kind, "mc");
  EXPECT_EQ(jobs[0].line, 3u);
  EXPECT_EQ(jobs[0].params.at("trials"), "50");
  EXPECT_EQ(jobs[0].params.at("lib"), "x.rgchar");
  EXPECT_EQ(jobs[0].params.count("id"), 0u);  // id/kind are lifted out
  EXPECT_EQ(jobs[1].id, "b");
  EXPECT_EQ(jobs[1].line, 5u);
}

TEST(Manifest, MissingIdOrKindIsALocatedParseError) {
  try {
    parse("{\"id\":\"a\",\"kind\":\"mc\"}\n{\"kind\":\"mc\"}\n");
    ADD_FAILURE() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.source(), "jobs.jsonl");
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("\"id\""), std::string::npos) << e.what();
  }
  EXPECT_THROW(parse("{\"id\":\"a\"}\n"), ParseError);
  EXPECT_THROW(parse("{\"id\":\"\",\"kind\":\"mc\"}\n"), ParseError);
}

TEST(Manifest, DuplicateIdIsAParseError) {
  try {
    parse("{\"id\":\"a\",\"kind\":\"mc\"}\n{\"id\":\"a\",\"kind\":\"mc\"}\n");
    ADD_FAILURE() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("duplicate job id"), std::string::npos) << e.what();
  }
}

TEST(Manifest, ReadLineFailpointPropagates) {
  const util::ScopedFailpoint fp("service.manifest.read_line", util::FailpointAction::kThrow, 1);
  EXPECT_THROW(parse("{\"id\":\"a\",\"kind\":\"mc\"}\n"), util::FailpointError);
}

TEST(Manifest, MissingFileIsIoError) {
  EXPECT_THROW(load_manifest("/nonexistent/jobs.jsonl"), IoError);
}

TEST(JournalRecord, SucceededRoundTrips) {
  JobRecord rec;
  rec.id = "job-1";
  rec.status = JobStatus::kSucceeded;
  rec.attempts = 2;
  rec.wall_ms = 12.3456;
  rec.mean_na = 1234.5678901234567;
  rec.sigma_na = 98.765;
  rec.method = "exact_fft";
  const JobRecord back = parse_journal_record(journal_record_json(rec), "j", 1);
  EXPECT_EQ(back.id, rec.id);
  EXPECT_EQ(back.status, JobStatus::kSucceeded);
  EXPECT_EQ(back.attempts, 2);
  EXPECT_NEAR(back.wall_ms, rec.wall_ms, 1e-4);
  EXPECT_EQ(back.mean_na, rec.mean_na);  // 17 significant digits: bit-exact
  EXPECT_EQ(back.sigma_na, rec.sigma_na);
  EXPECT_EQ(back.method, "exact_fft");
}

TEST(JournalRecord, FailedAndShedRoundTrip) {
  JobRecord rec;
  rec.id = "bad";
  rec.status = JobStatus::kFailed;
  rec.attempts = 3;
  rec.error = "{\"error\":\"numerical\",\"message\":\"nan \\\"quoted\\\"\"}";
  JobRecord back = parse_journal_record(journal_record_json(rec), "j", 1);
  EXPECT_EQ(back.status, JobStatus::kFailed);
  EXPECT_EQ(back.error, rec.error);

  rec.status = JobStatus::kShed;
  rec.attempts = 0;
  back = parse_journal_record(journal_record_json(rec), "j", 1);
  EXPECT_EQ(back.status, JobStatus::kShed);
  EXPECT_EQ(back.attempts, 0);
}

TEST(JournalRecord, DegradationAndBeatsAreOptionalFields) {
  JobRecord rec;
  rec.id = "job-2";
  rec.status = JobStatus::kSucceeded;
  rec.attempts = 1;
  rec.mean_na = 1.0;
  rec.sigma_na = 0.5;
  rec.method = "linear";

  // Defaulted fields stay off the wire: old journals and new readers agree.
  const std::string bare = journal_record_json(rec);
  EXPECT_EQ(bare.find("degradation"), std::string::npos) << bare;
  EXPECT_EQ(bare.find("beats"), std::string::npos) << bare;
  JobRecord back = parse_journal_record(bare, "j", 1);
  EXPECT_TRUE(back.degradation.empty());
  EXPECT_EQ(back.beats, 0u);

  rec.degradation = "mem: exact_fft->exact_direct";
  rec.beats = 77;
  back = parse_journal_record(journal_record_json(rec), "j", 1);
  EXPECT_EQ(back.degradation, "mem: exact_fft->exact_direct");
  EXPECT_EQ(back.beats, 77u);
}

TEST(JournalRecord, MalformedRecordsAreParseErrors) {
  EXPECT_THROW(parse_journal_record("{\"job\":\"a\"}", "j", 4), ParseError);  // no status
  EXPECT_THROW(parse_journal_record("{\"job\":\"a\",\"status\":\"meh\"}", "j", 4), ParseError);
  // A succeeded record without its payload is corrupt, not "mean zero".
  EXPECT_THROW(parse_journal_record("{\"job\":\"a\",\"status\":\"ok\"}", "j", 4), ParseError);
}

}  // namespace
}  // namespace rgleak::service
