// Memory admission: ladder walks, MC worker tiling, floor rejections.
//
// Uses the default MemoryCostModel coefficients, which at 1024 sites order
// the rungs exact_fft (8 MiB) > exact_direct (256 KiB) > linear (64 KiB) >
// integral_polar (32 KiB) — each budget below picks out one boundary.

#include <gtest/gtest.h>

#include "core/memory_cost.h"
#include "service/admission.h"
#include "util/error.h"

namespace rgleak::service {
namespace {

constexpr std::size_t kSites = 1024;

ResourceGovernor governor(std::uint64_t budget) {
  ResourceGovernor gov;
  gov.mem_budget_bytes = budget;
  return gov;
}

TEST(AdmitEstimate, UnlimitedBudgetRunsAsRequested) {
  const Admission adm = admit_estimate(governor(0), kSites, "exact_fft");
  EXPECT_EQ(adm.method, "exact_fft");
  EXPECT_TRUE(adm.degradation.empty());
}

TEST(AdmitEstimate, FittingRequestIsNotDegraded) {
  const Admission adm = admit_estimate(governor(16u << 20), kSites, "exact_fft");
  EXPECT_EQ(adm.method, "exact_fft");
  EXPECT_TRUE(adm.degradation.empty());
}

TEST(AdmitEstimate, WalksToFirstFittingRung) {
  // 1 MiB: too small for the FFT rung, plenty for direct.
  const Admission direct = admit_estimate(governor(1u << 20), kSites, "exact_fft");
  EXPECT_EQ(direct.method, "exact_direct");
  EXPECT_EQ(direct.degradation, "mem: exact_fft->exact_direct");

  // 128 KiB: skips fft and direct, lands on linear.
  const Admission linear = admit_estimate(governor(128u << 10), kSites, "exact_fft");
  EXPECT_EQ(linear.method, "linear");
  EXPECT_EQ(linear.degradation, "mem: exact_fft->linear");

  // 48 KiB: only the integral floor fits.
  const Admission polar = admit_estimate(governor(48u << 10), kSites, "exact_fft");
  EXPECT_EQ(polar.method, "integral_polar");
  EXPECT_EQ(polar.degradation, "mem: exact_fft->integral_polar");
}

TEST(AdmitEstimate, NeverUpgradesACheapRequest) {
  // linear fits and so would exact_direct, but the walk starts at the
  // requested rung — a cheap request stays cheap.
  const Admission adm = admit_estimate(governor(16u << 20), kSites, "linear");
  EXPECT_EQ(adm.method, "linear");
  EXPECT_TRUE(adm.degradation.empty());
}

TEST(AdmitEstimate, FloorMissIsTypedRejection) {
  try {
    admit_estimate(governor(16u << 10), kSites, "exact_fft");
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResource);
    EXPECT_NE(std::string(e.what()).find("integral_polar"), std::string::npos) << e.what();
  }
}

TEST(AdmitEstimate, OffLadderMethodIsCheckFitOnly) {
  const Admission fits = admit_estimate(governor(64u << 10), kSites, "integral_rect");
  EXPECT_EQ(fits.method, "integral_rect");
  EXPECT_TRUE(fits.degradation.empty());
  EXPECT_THROW(admit_estimate(governor(16u << 10), kSites, "integral_rect"), ResourceError);
}

TEST(AdmitEstimate, CalibratedModelTightensAdmission) {
  // A calibration observation 4x the default makes the FFT rung too big for
  // a budget the default model would have admitted.
  ResourceGovernor gov = governor(16u << 20);
  gov.memory.calibrate("fft", kSites, 64ull << 20);  // bench name maps to exact_fft
  const Admission adm = admit_estimate(gov, kSites, "exact_fft");
  EXPECT_EQ(adm.method, "exact_direct");
}

TEST(AdmitMc, UnlimitedBudgetPreservesThreadsIncludingAuto) {
  EXPECT_EQ(admit_mc(governor(0), kSites, 8).threads, 8u);
  EXPECT_EQ(admit_mc(governor(0), kSites, 0).threads, 0u) << "0 = hw concurrency must survive";
}

TEST(AdmitMc, HalvesWorkersUntilTheyFit) {
  // Per-worker prediction at 1024 sites: 4 MiB. A 9 MiB budget fits 2.
  const Admission adm = admit_mc(governor(9u << 20), kSites, 8);
  EXPECT_EQ(adm.method, "mc");
  EXPECT_EQ(adm.threads, 2u);
  EXPECT_EQ(adm.degradation, "mem: mc threads 8->2");
}

TEST(AdmitMc, FittingRequestIsNotDegraded) {
  const Admission adm = admit_mc(governor(64u << 20), kSites, 4);
  EXPECT_EQ(adm.threads, 4u);
  EXPECT_TRUE(adm.degradation.empty());
}

TEST(AdmitMc, AutoThreadsResolveToOneUnderPressure) {
  // threads=0 enters the ladder as 1 worker; with room for one it is
  // admitted pinned at 1 (auto would over-subscribe the budget).
  const Admission adm = admit_mc(governor(5u << 20), kSites, 0);
  EXPECT_EQ(adm.threads, 1u);
}

TEST(AdmitMc, SingleWorkerMissIsTypedRejection) {
  try {
    admit_mc(governor(1u << 20), kSites, 4);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResource);
    EXPECT_NE(std::string(e.what()).find("single worker"), std::string::npos) << e.what();
  }
}

TEST(MemoryCostModel, StructuralFormulasAreMonotonicInProblemSize) {
  using core::MemoryCostModel;
  EXPECT_LT(MemoryCostModel::exact_direct_bytes(100, 10, 10),
            MemoryCostModel::exact_direct_bytes(1000, 32, 32));
  EXPECT_LT(MemoryCostModel::exact_fft_bytes(8, 8, 2), MemoryCostModel::exact_fft_bytes(32, 32, 2));
  EXPECT_LT(MemoryCostModel::mc_worker_bytes(16, 16, 8, 8, 100),
            MemoryCostModel::mc_worker_bytes(64, 64, 32, 32, 1000));
}

TEST(MemoryCostModel, UnknownMethodPredictsUnaffordable) {
  const core::MemoryCostModel m = core::MemoryCostModel::defaults();
  EXPECT_EQ(m.predict_bytes("no_such_method", kSites),
            std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace rgleak::service
