// The flat-object JSON parser behind manifests and journals: accepts the
// documented subset, unescapes strings, and rejects everything malformed with
// a located ParseError.

#include <gtest/gtest.h>

#include <string>

#include "service/jsonio.h"
#include "util/error.h"

namespace rgleak::service {
namespace {

JsonObject parse(const std::string& text) { return parse_json_object(text, "test.jsonl", 3); }

TEST(JsonIo, ParsesEveryScalarKind) {
  const JsonObject obj =
      parse(R"({"s":"hi","n":12.5,"neg":-3,"exp":1e-3,"t":true,"f":false,"z":null})");
  EXPECT_EQ(obj.at("s"), "hi");
  EXPECT_EQ(obj.at("n"), "12.5");
  EXPECT_EQ(obj.at("neg"), "-3");
  EXPECT_EQ(obj.at("exp"), "1e-3");
  EXPECT_EQ(obj.at("t"), "true");
  EXPECT_EQ(obj.at("f"), "false");
  EXPECT_EQ(obj.at("z"), "null");
}

TEST(JsonIo, ToleratesWhitespaceAndEmptyObject) {
  EXPECT_TRUE(parse("  { }  ").empty());
  const JsonObject obj = parse("\t{ \"a\" :\t\"b\" , \"c\" : 1 } ");
  EXPECT_EQ(obj.at("a"), "b");
  EXPECT_EQ(obj.at("c"), "1");
}

TEST(JsonIo, UnescapesStrings) {
  const JsonObject obj = parse(R"({"k":"a\"b\\c\nd\te\u0041f\u00e9"})");
  EXPECT_EQ(obj.at("k"), "a\"b\\c\nd\teAf\xc3\xa9");
}

TEST(JsonIo, EscapeRoundTripsArbitraryStrings) {
  const std::string nasty = "quote\" slash\\ nl\n tab\t ctl\x01 utf\xc3\xa9";
  const JsonObject obj = parse("{\"k\":" + json_string(nasty) + "}");
  EXPECT_EQ(obj.at("k"), nasty);
}

struct BadCase {
  const char* text;
  const char* needle;
};

const BadCase kBad[] = {
    {"", "unexpected end"},
    {"[1,2]", "expected '{'"},
    {"{\"a\":1", "unexpected end"},
    {"{\"a\" 1}", "expected ':'"},
    {"{\"a\":1,}", "expected '\"'"},
    {"{\"a\":1}{", "trailing"},
    {"{\"a\":bogus}", "scalar"},
    {"{\"a\":1.2.3}", "scalar"},
    {"{\"a\":\"\\q\"}", "escape"},
    {"{\"a\":\"\\ud800\"}", "surrogate"},
    {"{\"a\":1,\"a\":2}", "duplicate key"},
    {"{\"a\":{\"b\":1}}", "scalar"},  // nested objects are out of the subset
};

TEST(JsonIo, MalformedInputRaisesLocatedParseError) {
  for (const BadCase& c : kBad) {
    try {
      (void)parse(c.text);
      ADD_FAILURE() << "'" << c.text << "': expected ParseError, parse succeeded";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.source(), "test.jsonl") << c.text;
      EXPECT_EQ(e.line(), 3u) << c.text;
      const std::string what = e.what();
      EXPECT_NE(what.find(c.needle), std::string::npos) << c.text << ": " << what;
    } catch (const std::exception& e) {
      ADD_FAILURE() << "'" << c.text << "': wrong exception type: " << e.what();
    }
  }
}

}  // namespace
}  // namespace rgleak::service
