// The crash-only batch journal: atomic whole-file persistence, resume
// semantics, malformed-file refusal, and absorbed write failures.

#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "service/journal.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace rgleak::service {
namespace {

using util::FailpointAction;
using util::ScopedFailpoint;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

JobRecord ok_record(const std::string& id, double mean) {
  JobRecord rec;
  rec.id = id;
  rec.status = JobStatus::kSucceeded;
  rec.attempts = 1;
  rec.mean_na = mean;
  rec.sigma_na = mean / 10.0;
  rec.method = "linear";
  return rec;
}

TEST(Journal, MissingFileIsAFreshJournal) {
  const std::string path = temp_path("rgleak_journal_fresh.jsonl");
  std::remove(path.c_str());
  const Journal j = Journal::open(path);
  EXPECT_EQ(j.size(), 0u);
  EXPECT_FALSE(j.has("anything"));
}

TEST(Journal, AppendPersistsAndReopenRestores) {
  const std::string path = temp_path("rgleak_journal_roundtrip.jsonl");
  std::remove(path.c_str());
  {
    Journal j = Journal::open(path);
    j.append(ok_record("a", 100.0));
    j.append(ok_record("b", 200.0));
    JobRecord bad;
    bad.id = "c";
    bad.status = JobStatus::kFailed;
    bad.attempts = 3;
    bad.error = "{\"error\":\"numerical\",\"message\":\"nan\"}";
    j.append(bad);
    EXPECT_EQ(j.write_failures(), 0u);
  }
  const Journal j = Journal::open(path);
  EXPECT_EQ(j.size(), 3u);
  EXPECT_TRUE(j.has("a"));
  EXPECT_TRUE(j.has("c"));
  const auto records = j.records();
  EXPECT_EQ(records.at("b").mean_na, 200.0);
  EXPECT_EQ(records.at("c").status, JobStatus::kFailed);
  EXPECT_EQ(records.at("c").error, "{\"error\":\"numerical\",\"message\":\"nan\"}");
  std::remove(path.c_str());
}

TEST(Journal, EmptyPathIsInMemoryOnly) {
  Journal j = Journal::open("");
  j.append(ok_record("a", 1.0));
  EXPECT_TRUE(j.has("a"));
  EXPECT_EQ(j.path(), "");
}

TEST(Journal, MalformedFilesAreRefusedWithLocatedErrors) {
  const std::string path = temp_path("rgleak_journal_bad.jsonl");
  const auto write = [&](const char* text) {
    std::ofstream os(path);
    os << text;
  };

  write("not-a-journal\n");
  try {
    (void)Journal::open(path);
    ADD_FAILURE() << "expected ParseError for bad magic";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.source(), path);
    EXPECT_EQ(e.line(), 1u);
  }

  write("rgbatch-journal-v1\n{\"job\":\"a\",\"status\":\"ok\",\"mean_na\":1}\n{\"job\":\"a\"");
  try {
    (void)Journal::open(path);
    ADD_FAILURE() << "expected ParseError for torn record";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }

  write(
      "rgbatch-journal-v1\n"
      "{\"job\":\"a\",\"status\":\"ok\",\"mean_na\":1}\n"
      "{\"job\":\"a\",\"status\":\"ok\",\"mean_na\":2}\n");
  try {
    (void)Journal::open(path);
    ADD_FAILURE() << "expected ParseError for duplicate record";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("duplicate journal record"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Journal, WriteFailureIsAbsorbedAndHealedByTheNextAppend) {
  const std::string path = temp_path("rgleak_journal_absorb.jsonl");
  std::remove(path.c_str());
  {
    Journal j = Journal::open(path);
    {
      const ScopedFailpoint fp("util.atomic_file.write", FailpointAction::kThrow, 1);
      j.append(ok_record("a", 1.0));  // persistence fails, record kept in memory
    }
    EXPECT_EQ(j.write_failures(), 1u);
    EXPECT_TRUE(j.has("a"));
    EXPECT_FALSE(std::ifstream(path).good());  // atomic writer left nothing

    j.append(ok_record("b", 2.0));  // healthy append persists both records
    EXPECT_EQ(j.write_failures(), 1u);
  }  // closing the journal releases the writer lock for the reopen below
  const Journal back = Journal::open(path);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_TRUE(back.has("a"));
  EXPECT_TRUE(back.has("b"));
  std::remove(path.c_str());
}

TEST(Journal, JournalAppendFailpointIsAbsorbedToo) {
  const std::string path = temp_path("rgleak_journal_failpoint.jsonl");
  std::remove(path.c_str());
  {
    Journal j = Journal::open(path);
    {
      const ScopedFailpoint fp("service.journal.append", FailpointAction::kThrow, 2);
      j.append(ok_record("a", 1.0));
      j.append(ok_record("b", 2.0));
    }
    EXPECT_EQ(j.write_failures(), 2u);
    EXPECT_TRUE(j.has("a"));
    EXPECT_TRUE(j.has("b"));
    j.flush();  // explicit flush persists what the failed appends could not
  }
  const Journal back = Journal::open(path);
  EXPECT_EQ(back.size(), 2u);
  std::remove(path.c_str());
}

TEST(Journal, SingleWriterLockRefusesASecondOpen) {
  const std::string path = temp_path("rgleak_journal_locked.jsonl");
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
  {
    Journal first = Journal::open(path);
    first.append(ok_record("a", 1.0));
    try {
      (void)Journal::open(path);
      ADD_FAILURE() << "second writer must be refused while the first holds the lock";
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find("already open"), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
    }
  }
  // Closing the first writer releases the flock: the journal is usable again,
  // with nothing lost to the refused open.
  const Journal second = Journal::open(path);
  EXPECT_EQ(second.size(), 1u);
  EXPECT_TRUE(second.has("a"));
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

TEST(Journal, InMemoryJournalsTakeNoLock) {
  // Two in-memory journals coexist: no path, no sidecar, no exclusion.
  Journal a = Journal::open("");
  Journal b = Journal::open("");
  a.append(ok_record("a", 1.0));
  b.append(ok_record("b", 2.0));
  EXPECT_TRUE(a.has("a"));
  EXPECT_TRUE(b.has("b"));
}

std::string corpus(const char* file) {
  return std::string(RGLEAK_JOURNAL_CORPUS_DIR) + "/" + file;
}

TEST(Journal, ChecksummedRecordsRoundTripAndCorruptOnesAreRefused) {
  // Every record the journal writes now carries a "crc" trailer field; the
  // roundtrip tests above prove checksummed records re-parse. The corpus
  // holds the two corruption shapes: a payload bit-flipped after the crc was
  // stamped, and a record torn in the middle with the suffix intact.
  try {
    (void)Journal::open(corpus("crc_mismatch.journal"));
    ADD_FAILURE() << "expected ParseError for checksum mismatch";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u) << "line 2 is valid; the flipped record is line 3";
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"), std::string::npos) << e.what();
  }
  try {
    (void)Journal::open(corpus("crc_truncated.journal"));
    ADD_FAILURE() << "expected ParseError for torn record";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"), std::string::npos) << e.what();
  }
}

TEST(Journal, LegacyRecordsWithoutChecksumStillLoad) {
  // Journals written before record checksumming carry no "crc" field; they
  // must keep loading so an upgrade never strands a half-finished batch.
  const std::string path = temp_path("rgleak_journal_legacy.jsonl");
  {
    std::ofstream os(path);
    os << "rgbatch-journal-v1\n"
       << "{\"job\":\"old\",\"status\":\"ok\",\"attempts\":1,\"wall_ms\":1.0000,"
          "\"mean_na\":42,\"sigma_na\":4.2}\n";
  }
  const Journal j = Journal::open(path);
  EXPECT_EQ(j.size(), 1u);
  EXPECT_EQ(j.records().at("old").mean_na, 42.0);
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

// Regression for the LC_NUMERIC bug: journal numbers used to flow through
// locale-honoring formatters, so a process started under a comma-decimal
// locale wrote "3,5"-style records its own parser then refused. The journal
// must now be byte-identical whatever the locale, and re-parse exactly.
TEST(Journal, RoundTripIsByteIdenticalUnderCommaDecimalLocale) {
  const char* applied = std::setlocale(LC_ALL, "de_DE.UTF-8");
  if (applied == nullptr) applied = std::setlocale(LC_ALL, "de_DE");
  if (applied == nullptr)
    GTEST_SKIP() << "no comma-decimal locale installed; locale hardness not exercised";

  const auto write_journal = [](const std::string& path) {
    std::remove(path.c_str());
    Journal j = Journal::open(path);
    // Fractional values that a comma locale would mangle, including a
    // full-precision irrational-ish one.
    JobRecord rec = ok_record("locale-a", 123.456789);
    rec.sigma_na = 1.0 / 3.0;
    rec.wall_ms = 12.3456;
    j.append(rec);
    j.append(ok_record("locale-b", 2.5e-3));
  };

  const std::string comma_path = temp_path("rgleak_journal_locale_comma.jsonl");
  write_journal(comma_path);
  std::setlocale(LC_ALL, "C");
  const std::string c_path = temp_path("rgleak_journal_locale_c.jsonl");
  write_journal(c_path);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  };
  const std::string comma_bytes = slurp(comma_path);
  EXPECT_FALSE(comma_bytes.empty());
  // Byte identity with the C-locale run is the whole theorem: the C-locale
  // file cannot contain decimal commas, so neither does this one.
  EXPECT_EQ(comma_bytes, slurp(c_path));

  // And the comma-locale-written file re-parses to the exact values.
  const Journal j = Journal::open(comma_path);
  EXPECT_EQ(j.records().at("locale-a").mean_na, 123.456789);
  EXPECT_EQ(j.records().at("locale-a").sigma_na, 1.0 / 3.0);
  EXPECT_EQ(j.records().at("locale-b").mean_na, 2.5e-3);
  for (const std::string& p : {comma_path, c_path}) {
    std::remove(p.c_str());
    std::remove((p + ".lock").c_str());
  }
}

TEST(Journal, FlushRethrowsWhatAppendAbsorbs) {
  const std::string path = temp_path("rgleak_journal_flushfail.jsonl");
  std::remove(path.c_str());
  Journal j = Journal::open(path);
  j.append(ok_record("a", 1.0));
  const ScopedFailpoint fp("util.atomic_file.write", FailpointAction::kThrow, 1);
  EXPECT_THROW(j.flush(), util::FailpointError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rgleak::service
