// The crash-only batch journal: atomic whole-file persistence, resume
// semantics, malformed-file refusal, and absorbed write failures.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "service/journal.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace rgleak::service {
namespace {

using util::FailpointAction;
using util::ScopedFailpoint;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

JobRecord ok_record(const std::string& id, double mean) {
  JobRecord rec;
  rec.id = id;
  rec.status = JobStatus::kSucceeded;
  rec.attempts = 1;
  rec.mean_na = mean;
  rec.sigma_na = mean / 10.0;
  rec.method = "linear";
  return rec;
}

TEST(Journal, MissingFileIsAFreshJournal) {
  const std::string path = temp_path("rgleak_journal_fresh.jsonl");
  std::remove(path.c_str());
  const Journal j = Journal::open(path);
  EXPECT_EQ(j.size(), 0u);
  EXPECT_FALSE(j.has("anything"));
}

TEST(Journal, AppendPersistsAndReopenRestores) {
  const std::string path = temp_path("rgleak_journal_roundtrip.jsonl");
  std::remove(path.c_str());
  {
    Journal j = Journal::open(path);
    j.append(ok_record("a", 100.0));
    j.append(ok_record("b", 200.0));
    JobRecord bad;
    bad.id = "c";
    bad.status = JobStatus::kFailed;
    bad.attempts = 3;
    bad.error = "{\"error\":\"numerical\",\"message\":\"nan\"}";
    j.append(bad);
    EXPECT_EQ(j.write_failures(), 0u);
  }
  const Journal j = Journal::open(path);
  EXPECT_EQ(j.size(), 3u);
  EXPECT_TRUE(j.has("a"));
  EXPECT_TRUE(j.has("c"));
  const auto records = j.records();
  EXPECT_EQ(records.at("b").mean_na, 200.0);
  EXPECT_EQ(records.at("c").status, JobStatus::kFailed);
  EXPECT_EQ(records.at("c").error, "{\"error\":\"numerical\",\"message\":\"nan\"}");
  std::remove(path.c_str());
}

TEST(Journal, EmptyPathIsInMemoryOnly) {
  Journal j = Journal::open("");
  j.append(ok_record("a", 1.0));
  EXPECT_TRUE(j.has("a"));
  EXPECT_EQ(j.path(), "");
}

TEST(Journal, MalformedFilesAreRefusedWithLocatedErrors) {
  const std::string path = temp_path("rgleak_journal_bad.jsonl");
  const auto write = [&](const char* text) {
    std::ofstream os(path);
    os << text;
  };

  write("not-a-journal\n");
  try {
    (void)Journal::open(path);
    ADD_FAILURE() << "expected ParseError for bad magic";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.source(), path);
    EXPECT_EQ(e.line(), 1u);
  }

  write("rgbatch-journal-v1\n{\"job\":\"a\",\"status\":\"ok\",\"mean_na\":1}\n{\"job\":\"a\"");
  try {
    (void)Journal::open(path);
    ADD_FAILURE() << "expected ParseError for torn record";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }

  write(
      "rgbatch-journal-v1\n"
      "{\"job\":\"a\",\"status\":\"ok\",\"mean_na\":1}\n"
      "{\"job\":\"a\",\"status\":\"ok\",\"mean_na\":2}\n");
  try {
    (void)Journal::open(path);
    ADD_FAILURE() << "expected ParseError for duplicate record";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("duplicate journal record"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Journal, WriteFailureIsAbsorbedAndHealedByTheNextAppend) {
  const std::string path = temp_path("rgleak_journal_absorb.jsonl");
  std::remove(path.c_str());
  Journal j = Journal::open(path);
  {
    const ScopedFailpoint fp("util.atomic_file.write", FailpointAction::kThrow, 1);
    j.append(ok_record("a", 1.0));  // persistence fails, record kept in memory
  }
  EXPECT_EQ(j.write_failures(), 1u);
  EXPECT_TRUE(j.has("a"));
  EXPECT_FALSE(std::ifstream(path).good());  // atomic writer left nothing

  j.append(ok_record("b", 2.0));  // healthy append persists both records
  EXPECT_EQ(j.write_failures(), 1u);
  const Journal back = Journal::open(path);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_TRUE(back.has("a"));
  EXPECT_TRUE(back.has("b"));
  std::remove(path.c_str());
}

TEST(Journal, JournalAppendFailpointIsAbsorbedToo) {
  const std::string path = temp_path("rgleak_journal_failpoint.jsonl");
  std::remove(path.c_str());
  Journal j = Journal::open(path);
  {
    const ScopedFailpoint fp("service.journal.append", FailpointAction::kThrow, 2);
    j.append(ok_record("a", 1.0));
    j.append(ok_record("b", 2.0));
  }
  EXPECT_EQ(j.write_failures(), 2u);
  EXPECT_TRUE(j.has("a"));
  EXPECT_TRUE(j.has("b"));
  j.flush();  // explicit flush persists what the failed appends could not
  const Journal back = Journal::open(path);
  EXPECT_EQ(back.size(), 2u);
  std::remove(path.c_str());
}

TEST(Journal, FlushRethrowsWhatAppendAbsorbs) {
  const std::string path = temp_path("rgleak_journal_flushfail.jsonl");
  std::remove(path.c_str());
  Journal j = Journal::open(path);
  j.append(ok_record("a", 1.0));
  const ScopedFailpoint fp("util.atomic_file.write", FailpointAction::kThrow, 1);
  EXPECT_THROW(j.flush(), util::FailpointError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rgleak::service
