// The stall watchdog: a wedged job (no progress heartbeat) is cancelled
// within a bounded delay, a slow-but-polling job is left alone, and a stalled
// attempt is classified retryable. All tests here run real threads and real
// time (no FakeClock: the monitor samples wall-clock heartbeats) and are part
// of the TSan filter (*Stall*) in scripts/tsan_check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "service/batch_runner.h"
#include "util/error.h"
#include "util/run_control.h"

namespace rgleak::service {
namespace {

class FnExecutor : public Executor {
 public:
  using Fn = std::function<JobOutput(const JobSpec&, const util::RunControl*, int)>;
  explicit FnExecutor(Fn fn) : fn_(std::move(fn)) {}
  JobOutput execute(const JobSpec& job, const util::RunControl* watchdog, int degrade) override {
    return fn_(job, watchdog, degrade);
  }

 private:
  Fn fn_;
};

JobSpec job(const std::string& id) {
  JobSpec j;
  j.id = id;
  j.kind = "test";
  return j;
}

JobOutput ok_output() {
  JobOutput out;
  out.mean_na = 1.0;
  out.sigma_na = 0.1;
  out.method = "fake";
  return out;
}

// All lambdas here report through in-process atomics, so every test pins
// in-process isolation (the cross-process heartbeat bridge has its own tests
// in tests/service/test_subprocess.cpp).
BatchOptions in_process_options() {
  BatchOptions opts;
  opts.isolate = ExecIsolation::kInProcess;
  return opts;
}

// A wedged worker: never beats (reason() is observation-only), notices the
// stop within 5 ms, reports how long it was wedged, then raises the stop as
// the engines would.
double wedge_until_stopped(const util::RunControl* wd) {
  const auto t0 = std::chrono::steady_clock::now();
  while (wd->reason() == util::StopReason::kNone)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

TEST(StallWatchdog, CancelsWedgedJobWithinTwoTimeouts) {
  constexpr double kStallS = 0.4;
  std::atomic<double> wedged_s{0.0};
  std::atomic<int> reason{0};
  FnExecutor exec([&](const JobSpec&, const util::RunControl* wd, int) -> JobOutput {
    wedged_s.store(wedge_until_stopped(wd));
    reason.store(static_cast<int>(wd->reason()));
    throw wd->make_error("test.wedge");
  });
  Journal journal = Journal::open("");
  BatchOptions opts = in_process_options();
  opts.retry.max_attempts = 1;
  opts.stall_timeout_s = kStallS;
  const BatchSummary s = run_batch({job("wedge")}, exec, journal, opts);

  EXPECT_EQ(s.stalls, 1u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(static_cast<util::StopReason>(reason.load()), util::StopReason::kStalled);
  EXPECT_GE(wedged_s.load(), kStallS) << "fired before the timeout elapsed";
  EXPECT_LE(wedged_s.load(), 2.0 * kStallS) << "cancellation latency over 2x the timeout";
  const JobRecord rec = journal.records().at("wedge");
  EXPECT_EQ(rec.status, JobStatus::kFailed);
  EXPECT_NE(rec.error.find("stalled"), std::string::npos) << rec.error;
}

TEST(StallWatchdog, LeavesSlowButBeatingJobAlone) {
  constexpr double kStallS = 0.15;
  FnExecutor exec([&](const JobSpec&, const util::RunControl* wd, int) {
    // Runs for 3x the stall timeout, but polls (and therefore beats) the
    // whole way — progress-keyed, not time-keyed.
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(3.0 * kStallS);
    while (std::chrono::steady_clock::now() < until) {
      EXPECT_FALSE(wd->should_stop());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return ok_output();
  });
  Journal journal = Journal::open("");
  BatchOptions opts = in_process_options();
  opts.retry.max_attempts = 1;
  opts.stall_timeout_s = kStallS;
  const BatchSummary s = run_batch({job("slow")}, exec, journal, opts);

  EXPECT_EQ(s.stalls, 0u);
  EXPECT_EQ(s.succeeded, 1u);
  const JobRecord rec = journal.records().at("slow");
  EXPECT_EQ(rec.status, JobStatus::kSucceeded);
  EXPECT_GT(rec.beats, 0u) << "heartbeats must be journaled for post-mortems";
}

TEST(StallWatchdog, StalledAttemptIsRetriedAndCanSucceed) {
  std::atomic<int> attempts{0};
  FnExecutor exec([&](const JobSpec&, const util::RunControl* wd, int) -> JobOutput {
    if (attempts.fetch_add(1) == 0) {
      wedge_until_stopped(wd);
      throw wd->make_error("test.flaky");  // kStalled -> DeadlineExceeded: retryable
    }
    return ok_output();
  });
  Journal journal = Journal::open("");
  BatchOptions opts = in_process_options();
  opts.retry.max_attempts = 2;
  opts.retry.backoff.base_ms = 1.0;
  opts.retry.backoff.cap_ms = 2.0;
  opts.stall_timeout_s = 0.15;
  const BatchSummary s = run_batch({job("flaky")}, exec, journal, opts);

  EXPECT_EQ(s.stalls, 1u);
  EXPECT_EQ(s.retries, 1u);
  EXPECT_EQ(s.succeeded, 1u);
  const JobRecord rec = journal.records().at("flaky");
  EXPECT_EQ(rec.status, JobStatus::kSucceeded);
  EXPECT_EQ(rec.attempts, 2);
}

TEST(StallWatchdog, OffByDefaultNeverFires) {
  FnExecutor exec([&](const JobSpec&, const util::RunControl*, int) {
    // No heartbeat for longer than any timeout used above; with the watchdog
    // off this must simply complete.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return ok_output();
  });
  Journal journal = Journal::open("");
  BatchOptions opts = in_process_options();
  opts.retry.max_attempts = 1;
  const BatchSummary s = run_batch({job("quiet")}, exec, journal, opts);
  EXPECT_EQ(s.stalls, 0u);
  EXPECT_EQ(s.succeeded, 1u);
}

TEST(StallWatchdog, ConcurrentWorkersStallIndependently) {
  // Generous timeout: four workers plus the monitor share whatever cores the
  // CI runner has, and a healthy worker descheduled past the timeout would
  // read as a spurious stall.
  constexpr double kStallS = 0.35;
  std::atomic<int> stalled_count{0};
  FnExecutor exec([&](const JobSpec& j, const util::RunControl* wd, int) -> JobOutput {
    if (j.id.rfind("wedge", 0) == 0) {
      wedge_until_stopped(wd);
      stalled_count.fetch_add(1);
      throw wd->make_error("test.multi");
    }
    // Healthy neighbors keep polling well past the wedged jobs' cancellation.
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(2.0 * kStallS);
    while (std::chrono::steady_clock::now() < until) {
      EXPECT_FALSE(wd->should_stop());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return ok_output();
  });
  Journal journal = Journal::open("");
  BatchOptions opts = in_process_options();
  opts.retry.max_attempts = 1;
  opts.workers = 4;
  opts.stall_timeout_s = kStallS;
  const std::vector<JobSpec> jobs = {job("wedge-1"), job("ok-1"), job("wedge-2"), job("ok-2")};
  const BatchSummary s = run_batch(jobs, exec, journal, opts);

  EXPECT_EQ(s.stalls, 2u);
  EXPECT_EQ(stalled_count.load(), 2);
  EXPECT_EQ(s.succeeded, 2u);
  EXPECT_EQ(s.failed, 2u);
  EXPECT_EQ(journal.records().at("ok-1").status, JobStatus::kSucceeded);
  EXPECT_EQ(journal.records().at("ok-2").status, JobStatus::kSucceeded);
}

}  // namespace
}  // namespace rgleak::service
