#include "charlib/leakage_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cells/library.h"
#include "util/require.h"

namespace rgleak::charlib {
namespace {

const device::TechnologyParams kTech{};

const cells::Cell& inv() {
  static const cells::StdCellLibrary lib = cells::build_mini_library();
  static const cells::Cell& c = lib.cell(lib.index_of("INV_X1"));
  return c;
}

TEST(LeakageTable, InterpolationMatchesDirectEvaluation) {
  const LeakageTable table(inv(), 0, kTech, 30.0, 50.0, 257);
  for (double l = 31.0; l <= 49.0; l += 0.7) {
    const double direct = inv().leakage_na(0, l, kTech);
    const double interp = table.eval_na(l);
    EXPECT_NEAR(interp, direct, 1e-4 * direct) << "l=" << l;
  }
}

TEST(LeakageTable, CoarseTableStillAccurate) {
  // ln I is nearly quadratic, so even 33 points interpolate well.
  const LeakageTable table(inv(), 0, kTech, 30.0, 50.0, 33);
  for (double l = 32.0; l <= 48.0; l += 1.1) {
    const double direct = inv().leakage_na(0, l, kTech);
    EXPECT_NEAR(table.eval_na(l), direct, 2e-3 * direct);
  }
}

TEST(LeakageTable, ExtrapolatesLogLinearly) {
  const LeakageTable table(inv(), 0, kTech, 35.0, 45.0, 65);
  // Outside the table the extrapolation must stay positive, finite, and
  // monotone.
  const double below = table.eval_na(30.0);
  const double at_edge = table.eval_na(35.0);
  const double above = table.eval_na(50.0);
  EXPECT_GT(below, at_edge);
  EXPECT_GT(at_edge, above);
  EXPECT_TRUE(std::isfinite(below) && below > 0.0);
  EXPECT_TRUE(std::isfinite(above) && above > 0.0);
}

TEST(LeakageTable, MonotoneDecreasingInLength) {
  const LeakageTable table(inv(), 0, kTech, 30.0, 50.0, 129);
  double prev = table.eval_na(30.0);
  for (double l = 30.5; l <= 50.0; l += 0.5) {
    const double v = table.eval_na(l);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(LeakageTable, PerStateTablesDiffer) {
  const LeakageTable t0(inv(), 0, kTech, 30.0, 50.0, 65);
  const LeakageTable t1(inv(), 1, kTech, 30.0, 50.0, 65);
  EXPECT_NE(t0.eval_na(40.0), t1.eval_na(40.0));
}

TEST(LeakageTable, EvalManyMatchesScalarEval) {
  // The batched path shares the scalar path's interpolation (including the
  // end-segment extrapolation) but uses a reciprocal-multiply index and the
  // vexp kernel; divergence is a few ULP.
  const LeakageTable table(inv(), 0, kTech, 30.0, 50.0, 129);
  std::vector<double> l;
  for (double x = 25.0; x <= 55.0; x += 0.093) l.push_back(x);  // spans extrapolation
  std::vector<double> batched(l.size());
  table.eval_many_na(l.data(), batched.data(), l.size());
  for (std::size_t i = 0; i < l.size(); ++i) {
    const double scalar = table.eval_na(l[i]);
    EXPECT_NEAR(batched[i], scalar, 1e-12 * scalar) << "l=" << l[i];
  }
}

TEST(LeakageTable, EvalManyInPlaceAndEmpty) {
  const LeakageTable table(inv(), 0, kTech, 30.0, 50.0, 65);
  std::vector<double> buf = {33.0, 40.0, 47.5};
  const std::vector<double> lengths = buf;
  table.eval_many_na(buf.data(), buf.data(), buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_NEAR(buf[i], table.eval_na(lengths[i]), 1e-12 * buf[i]);
  table.eval_many_na(nullptr, nullptr, 0);  // no-op
}

TEST(LeakageTable, LogRangeBoundsTabulatedValues) {
  const LeakageTable table(inv(), 0, kTech, 30.0, 50.0, 65);
  EXPECT_LT(table.log_i_min(), table.log_i_max());
  // Monotone decreasing table: extremes sit at the length-range endpoints.
  EXPECT_NEAR(table.log_i_max(), std::log(table.eval_na(30.0)), 1e-12);
  EXPECT_NEAR(table.log_i_min(), std::log(table.eval_na(50.0)), 1e-12);
}

TEST(LeakageTable, ContractChecks) {
  EXPECT_THROW(LeakageTable(inv(), 0, kTech, 30.0, 50.0, 1), ContractViolation);
  EXPECT_THROW(LeakageTable(inv(), 0, kTech, 50.0, 30.0, 65), ContractViolation);
  EXPECT_THROW(LeakageTable(inv(), 0, kTech, -1.0, 50.0, 65), ContractViolation);
  EXPECT_THROW(LeakageTable(inv(), 7, kTech, 30.0, 50.0, 65), ContractViolation);
}

}  // namespace
}  // namespace rgleak::charlib
