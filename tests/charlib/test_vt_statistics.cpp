#include "charlib/vt_statistics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "core/estimators.h"
#include "util/require.h"

namespace rgleak::charlib {
namespace {

using rgleak::testing::mini_library;

const process::VtVariation kVt{0.02};

TEST(PelgromSigma, ScalesInverseSqrtArea) {
  const device::TechnologyParams tech;
  const double ref = pelgrom_sigma_v(kVt, tech, 120.0, tech.l_nominal_nm);
  EXPECT_NEAR(ref, kVt.sigma_v, 1e-12);  // reference device
  const double wide = pelgrom_sigma_v(kVt, tech, 480.0, tech.l_nominal_nm);
  EXPECT_NEAR(wide, kVt.sigma_v / 2.0, 1e-12);  // 4x area -> half sigma
  EXPECT_THROW(pelgrom_sigma_v(kVt, tech, 0.0, 40.0), ContractViolation);
}

TEST(VtCellStats, InverterMeanInflationMatchesLognormalFactor) {
  // A single off device dominates the inverter's leakage; the MC mean
  // inflation should be close to the analytic exp(sigma_eff^2/(2 (n vT)^2)).
  const auto& lib = mini_library();
  const auto& inv = lib.cell(lib.index_of("INV_X1"));
  math::Rng rng(1);
  const VtCellStats st = vt_cell_statistics(inv, 0, lib.tech(), kVt, rng, 60000);
  EXPECT_GT(st.mean_inflation, 1.0);
  // The off NMOS (W=120) has sigma_eff = sigma_vt; predict its factor.
  const double z = kVt.sigma_v / (lib.tech().subthreshold_n * lib.tech().thermal_vt_v);
  const double predicted = std::exp(0.5 * z * z);
  EXPECT_NEAR(st.mean_inflation, predicted, 0.02 * predicted);
}

TEST(VtCellStats, SigmaMatchesLognormalSpread) {
  const auto& lib = mini_library();
  const auto& inv = lib.cell(lib.index_of("INV_X1"));
  math::Rng rng(2);
  const VtCellStats st = vt_cell_statistics(inv, 0, lib.tech(), kVt, rng, 60000);
  // For one dominant lognormal device: cv^2 = exp(z^2) - 1.
  const double z = kVt.sigma_v / (lib.tech().subthreshold_n * lib.tech().thermal_vt_v);
  const double cv_pred = std::sqrt(std::exp(z * z) - 1.0);
  EXPECT_NEAR(st.sigma_na / st.mean_na, cv_pred, 0.25 * cv_pred);
}

TEST(VtCellStats, ZeroSigmaGivesNominal) {
  const auto& lib = mini_library();
  const auto& inv = lib.cell(lib.index_of("INV_X1"));
  math::Rng rng(3);
  const VtCellStats st =
      vt_cell_statistics(inv, 0, lib.tech(), process::VtVariation{0.0}, rng, 100);
  EXPECT_NEAR(st.mean_na, st.nominal_na, 1e-9 * st.nominal_na);
  EXPECT_NEAR(st.sigma_na, 0.0, 1e-9 * st.nominal_na);
  EXPECT_NEAR(st.mean_inflation, 1.0, 1e-12);
}

TEST(VtCellStats, StackedCellLessSensitiveThanInverter) {
  // In a 2-stack both devices must fluctuate low to raise the current much;
  // the relative Vt spread of the stacked state is not larger than ~the
  // single-device case.
  const auto& lib = mini_library();
  const auto& inv = lib.cell(lib.index_of("INV_X1"));
  const auto& nand = lib.cell(lib.index_of("NAND2_X1"));
  math::Rng rng(4);
  const VtCellStats si = vt_cell_statistics(inv, 0, lib.tech(), kVt, rng, 40000);
  const VtCellStats sn = vt_cell_statistics(nand, 0, lib.tech(), kVt, rng, 40000);
  EXPECT_LT(sn.sigma_na / sn.mean_na, 1.5 * (si.sigma_na / si.mean_na));
}

TEST(VtCellStats, ContractChecks) {
  const auto& lib = mini_library();
  const auto& inv = lib.cell(lib.index_of("INV_X1"));
  math::Rng rng(5);
  EXPECT_THROW(vt_cell_statistics(inv, 0, lib.tech(), kVt, rng, 1), ContractViolation);
  EXPECT_THROW(vt_cell_statistics(inv, 9, lib.tech(), kVt, rng, 10), ContractViolation);
}

TEST(VtCellStats, ConsistentWithChipMeanFactor) {
  // The chip-level multiplicative factor used by the facade should sit in the
  // range spanned by per-cell MC inflations.
  const auto& lib = mini_library();
  const double chip_factor = core::vt_mean_factor(kVt, lib.tech());
  math::Rng rng(6);
  double lo = 1e300, hi = 0.0;
  for (const char* name : {"INV_X1", "NAND2_X1", "NOR2_X1"}) {
    const auto& cell = lib.cell(lib.index_of(name));
    const VtCellStats st = vt_cell_statistics(cell, 0, lib.tech(), kVt, rng, 20000);
    lo = std::min(lo, st.mean_inflation);
    hi = std::max(hi, st.mean_inflation);
  }
  EXPECT_GT(chip_factor, 0.8 * lo);
  EXPECT_LT(chip_factor, 1.2 * hi);
}

}  // namespace
}  // namespace rgleak::charlib
