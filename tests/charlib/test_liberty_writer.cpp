#include "charlib/liberty_writer.h"

#include <gtest/gtest.h>

#include <sstream>

#include "../test_util.h"
#include "util/require.h"

namespace rgleak::charlib {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;

TEST(LibertyWhen, ConditionFormat) {
  EXPECT_EQ(liberty_when_condition(0, 0), "");
  EXPECT_EQ(liberty_when_condition(1, 0), "!A");
  EXPECT_EQ(liberty_when_condition(1, 1), "A");
  EXPECT_EQ(liberty_when_condition(2, 2), "!A & B");
  EXPECT_EQ(liberty_when_condition(3, 5), "A & !B & C");
  EXPECT_THROW(liberty_when_condition(2, 4), ContractViolation);
  EXPECT_THROW(liberty_when_condition(27, 0), ContractViolation);
}

TEST(LibertyWriter, EmitsEveryCellAndState) {
  std::stringstream buf;
  write_liberty(mini_chars_analytic(), buf);
  const std::string lib = buf.str();
  // Library header and every cell present.
  EXPECT_NE(lib.find("library (rgleak_virtual90)"), std::string::npos);
  for (std::size_t ci = 0; ci < mini_library().size(); ++ci)
    EXPECT_NE(lib.find("cell (" + mini_library().cell(ci).name() + ")"), std::string::npos);
  // One leakage_power group per state in total.
  std::size_t expected_states = 0;
  for (std::size_t ci = 0; ci < mini_library().size(); ++ci)
    expected_states += mini_library().cell(ci).num_states();
  std::size_t found = 0;
  for (std::size_t pos = lib.find("leakage_power ()"); pos != std::string::npos;
       pos = lib.find("leakage_power ()", pos + 1))
    ++found;
  EXPECT_EQ(found, expected_states);
}

TEST(LibertyWriter, ValuesAreMeanTimesVdd) {
  std::stringstream buf;
  write_liberty(mini_chars_analytic(), buf);
  const std::string lib = buf.str();
  // The NAND2 state-0 mean (nA) times Vdd (1 V) must appear as a value.
  const std::size_t nand = mini_library().index_of("NAND2_X1");
  const double v = mini_chars_analytic().cell(nand).states[0].mean_na *
                   mini_library().tech().vdd_v;
  std::ostringstream expect;
  expect << "value : " << std::setprecision(8) << v;
  EXPECT_NE(lib.find(expect.str()), std::string::npos) << expect.str();
}

TEST(LibertyWriter, BalancedBraces) {
  std::stringstream buf;
  write_liberty(mini_chars_analytic(), buf);
  const std::string lib = buf.str();
  long depth = 0;
  for (char c : lib) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(LibertyWriter, FileOutput) {
  const std::string path = ::testing::TempDir() + "/rgleak_test.lib";
  EXPECT_NO_THROW(write_liberty(mini_chars_analytic(), path));
}

}  // namespace
}  // namespace rgleak::charlib
