#include "charlib/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "../test_util.h"
#include "util/require.h"

namespace rgleak::charlib {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_chars_mc;
using rgleak::testing::mini_library;

TEST(CharIo, RoundTripAnalytic) {
  const auto& orig = mini_chars_analytic();
  std::stringstream buf;
  save_characterization(orig, buf);
  const CharacterizedLibrary loaded = load_characterization(mini_library(), buf);

  ASSERT_EQ(loaded.size(), orig.size());
  EXPECT_TRUE(loaded.has_models());
  for (std::size_t ci = 0; ci < orig.size(); ++ci) {
    for (std::size_t s = 0; s < orig.cell(ci).states.size(); ++s) {
      const auto& a = orig.cell(ci).states[s];
      const auto& b = loaded.cell(ci).states[s];
      EXPECT_DOUBLE_EQ(a.mean_na, b.mean_na);
      EXPECT_DOUBLE_EQ(a.sigma_na, b.sigma_na);
      ASSERT_TRUE(b.model.has_value());
      EXPECT_DOUBLE_EQ(a.model->a, b.model->a);
      EXPECT_DOUBLE_EQ(a.model->b, b.model->b);
      EXPECT_DOUBLE_EQ(a.model->c, b.model->c);
    }
  }
}

TEST(CharIo, RoundTripProcessDescription) {
  const auto& orig = mini_chars_analytic();
  std::stringstream buf;
  save_characterization(orig, buf);
  const CharacterizedLibrary loaded = load_characterization(mini_library(), buf);
  const auto& po = orig.process();
  const auto& pl = loaded.process();
  EXPECT_DOUBLE_EQ(pl.length().mean_nm, po.length().mean_nm);
  EXPECT_DOUBLE_EQ(pl.length().sigma_d2d_nm, po.length().sigma_d2d_nm);
  EXPECT_DOUBLE_EQ(pl.length().sigma_wid_nm, po.length().sigma_wid_nm);
  EXPECT_DOUBLE_EQ(pl.vt().sigma_v, po.vt().sigma_v);
  EXPECT_EQ(pl.wid_correlation().name(), po.wid_correlation().name());
  // Correlation function survives (scale recovered by inversion).
  for (double d : {1e3, 1e4, 5e4})
    EXPECT_NEAR(pl.wid_correlation()(d), po.wid_correlation()(d), 1e-6);
}

TEST(CharIo, RoundTripMcWithoutModels) {
  const auto& orig = mini_chars_mc();
  std::stringstream buf;
  save_characterization(orig, buf);
  const CharacterizedLibrary loaded = load_characterization(mini_library(), buf);
  EXPECT_FALSE(loaded.has_models());
  EXPECT_DOUBLE_EQ(loaded.cell(0).states[0].mean_na, orig.cell(0).states[0].mean_na);
}

TEST(CharIo, RoundTripAnisotropy) {
  process::LengthVariation len;
  len.mean_nm = 40.0;
  len.sigma_d2d_nm = len.sigma_wid_nm = 1.25;
  process::CorrelationAnisotropy an;
  an.scale_x = 2.5;
  an.scale_y = 0.8;
  const process::ProcessVariation p(
      len, process::VtVariation{}, std::make_shared<process::ExponentialCorrelation>(2.0e4),
      an);
  const CharacterizedLibrary chars = characterize_analytic(mini_library(), p);
  std::stringstream buf;
  save_characterization(chars, buf);
  const CharacterizedLibrary loaded = load_characterization(mini_library(), buf);
  EXPECT_DOUBLE_EQ(loaded.process().anisotropy().scale_x, 2.5);
  EXPECT_DOUBLE_EQ(loaded.process().anisotropy().scale_y, 0.8);
  EXPECT_NEAR(loaded.process().total_length_correlation_xy(1e4, 2e4),
              p.total_length_correlation_xy(1e4, 2e4), 1e-9);
}

TEST(CharIo, RejectsBadHeader) {
  std::stringstream buf("not-a-charlib\n");
  try {
    (void)load_characterization(mini_library(), buf, "bad.rgchar");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.source(), "bad.rgchar");
    EXPECT_EQ(e.line(), 1u);
  }
}

TEST(CharIo, RejectsWrongLibrary) {
  // Serialize the mini library, try to load against the full library.
  std::stringstream buf;
  save_characterization(mini_chars_analytic(), buf);
  EXPECT_THROW(load_characterization(rgleak::testing::full_library(), buf), ParseError);
}

TEST(CharIo, RejectsTruncatedFile) {
  std::stringstream full;
  save_characterization(mini_chars_analytic(), full);
  const std::string text = full.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  try {
    (void)load_characterization(mini_library(), truncated);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GT(e.line(), 1u);
  }
}

TEST(CharIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rgleak_test.rgchar";
  save_characterization(mini_chars_analytic(), path);
  const CharacterizedLibrary loaded = load_characterization(mini_library(), path);
  EXPECT_EQ(loaded.size(), mini_chars_analytic().size());
  EXPECT_THROW(load_characterization(mini_library(), path + ".missing"), IoError);
}

}  // namespace
}  // namespace rgleak::charlib
