#include "charlib/characterize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "util/require.h"

namespace rgleak::charlib {
namespace {

using rgleak::testing::expect_rel_near;
using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_chars_mc;
using rgleak::testing::mini_library;
using rgleak::testing::test_process;

TEST(CharacterizedLibrary, StructureMatchesLibrary) {
  const auto& chars = mini_chars_analytic();
  ASSERT_EQ(chars.size(), mini_library().size());
  for (std::size_t i = 0; i < chars.size(); ++i)
    EXPECT_EQ(chars.cell(i).states.size(), mini_library().cell(i).num_states());
  EXPECT_TRUE(chars.has_models());
  EXPECT_FALSE(mini_chars_mc().has_models());
}

TEST(Characterize, AnalyticMatchesMonteCarloMean) {
  // Paper section 2.1.2: mean error < 2% for all gates.
  const auto& a = mini_chars_analytic();
  const auto& m = mini_chars_mc();
  for (std::size_t ci = 0; ci < a.size(); ++ci) {
    for (std::size_t s = 0; s < a.cell(ci).states.size(); ++s) {
      expect_rel_near(a.cell(ci).states[s].mean_na, m.cell(ci).states[s].mean_na, 0.03,
                      mini_library().cell(ci).name().c_str());
    }
  }
}

TEST(Characterize, AnalyticMatchesMonteCarloSigma) {
  // Paper: sigma errors average 3.1%, max ~10%. Allow MC noise on top.
  const auto& a = mini_chars_analytic();
  const auto& m = mini_chars_mc();
  for (std::size_t ci = 0; ci < a.size(); ++ci) {
    for (std::size_t s = 0; s < a.cell(ci).states.size(); ++s) {
      expect_rel_near(a.cell(ci).states[s].sigma_na, m.cell(ci).states[s].sigma_na, 0.12,
                      mini_library().cell(ci).name().c_str());
    }
  }
}

TEST(Characterize, StackStatesLeakLessOnAverage) {
  const auto& chars = mini_chars_analytic();
  const std::size_t nand2 = mini_library().index_of("NAND2_X1");
  // State 0 (both inputs low, full stack) leaks least.
  const auto& states = chars.cell(nand2).states;
  EXPECT_LT(states[0].mean_na, states[1].mean_na);
  EXPECT_LT(states[0].mean_na, states[2].mean_na);
}

TEST(FitLogQuadratic, ReproducesLeakageCurve) {
  const auto& lib = mini_library();
  const auto& cell = lib.cell(lib.index_of("NAND2_X1"));
  const math::LogQuadraticModel m =
      fit_log_quadratic(cell, 3, lib.tech(), 40.0, 2.5);
  EXPECT_GT(m.a, 0.0);
  EXPECT_LT(m.b, 0.0);  // leakage decreases with L
  for (double l = 33.0; l <= 47.0; l += 1.0) {
    const double direct = cell.leakage_na(3, l, lib.tech());
    EXPECT_NEAR(m(l), direct, 0.05 * direct) << "l=" << l;
  }
}

TEST(StateProbabilities, BernoulliProductForm) {
  const auto& chars = mini_chars_analytic();
  const std::size_t nand2 = mini_library().index_of("NAND2_X1");
  const auto p = chars.state_probabilities(nand2, 0.3);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_NEAR(p[0], 0.7 * 0.7, 1e-12);
  EXPECT_NEAR(p[1], 0.3 * 0.7, 1e-12);
  EXPECT_NEAR(p[2], 0.7 * 0.3, 1e-12);
  EXPECT_NEAR(p[3], 0.3 * 0.3, 1e-12);
  double total = 0.0;
  for (double x : p) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(StateProbabilities, DegenerateEndpoints) {
  const auto& chars = mini_chars_analytic();
  const std::size_t inv = mini_library().index_of("INV_X1");
  const auto p0 = chars.state_probabilities(inv, 0.0);
  EXPECT_DOUBLE_EQ(p0[0], 1.0);
  EXPECT_DOUBLE_EQ(p0[1], 0.0);
  const auto p1 = chars.state_probabilities(inv, 1.0);
  EXPECT_DOUBLE_EQ(p1[1], 1.0);
  EXPECT_THROW(chars.state_probabilities(inv, 1.5), ContractViolation);
}

TEST(EffectiveStats, MixesStatesCorrectly) {
  const auto& chars = mini_chars_analytic();
  const std::size_t inv = mini_library().index_of("INV_X1");
  const auto& st = chars.cell(inv).states;
  const EffectiveCellStats eff = chars.effective(inv, {0.25, 0.75});
  EXPECT_NEAR(eff.mean_na, 0.25 * st[0].mean_na + 0.75 * st[1].mean_na, 1e-9);
  const double second = 0.25 * (st[0].sigma_na * st[0].sigma_na + st[0].mean_na * st[0].mean_na) +
                        0.75 * (st[1].sigma_na * st[1].sigma_na + st[1].mean_na * st[1].mean_na);
  EXPECT_NEAR(eff.sigma_na * eff.sigma_na, second - eff.mean_na * eff.mean_na,
              1e-6 * second);
}

TEST(EffectiveStats, DegenerateSingleState) {
  const auto& chars = mini_chars_analytic();
  const std::size_t inv = mini_library().index_of("INV_X1");
  const EffectiveCellStats eff = chars.effective(inv, {1.0, 0.0});
  EXPECT_NEAR(eff.mean_na, chars.cell(inv).states[0].mean_na, 1e-12);
  EXPECT_NEAR(eff.sigma_na, chars.cell(inv).states[0].sigma_na, 1e-9);
}

TEST(EffectiveStats, ContractChecks) {
  const auto& chars = mini_chars_analytic();
  EXPECT_THROW(chars.effective(0, {0.5}), ContractViolation);       // wrong count
  EXPECT_THROW(chars.effective(0, {0.5, 0.2}), ContractViolation);  // not normalized
  EXPECT_THROW(chars.effective(99, {1.0, 0.0}), ContractViolation);
}

TEST(Characterize, McSeedReproducible) {
  McCharOptions opts;
  opts.samples = 2000;
  opts.seed = 5;
  const auto a = characterize_monte_carlo(mini_library(), test_process(), opts);
  const auto b = characterize_monte_carlo(mini_library(), test_process(), opts);
  for (std::size_t ci = 0; ci < a.size(); ++ci)
    for (std::size_t s = 0; s < a.cell(ci).states.size(); ++s)
      EXPECT_DOUBLE_EQ(a.cell(ci).states[s].mean_na, b.cell(ci).states[s].mean_na);
}

TEST(Characterize, McOptionContracts) {
  McCharOptions opts;
  opts.samples = 1;
  EXPECT_THROW(characterize_monte_carlo(mini_library(), test_process(), opts),
               ContractViolation);
  AnalyticCharOptions aopts;
  aopts.fit_points = 2;
  EXPECT_THROW(characterize_analytic(mini_library(), test_process(), aopts),
               ContractViolation);
}

TEST(Characterize, SigmaGrowsWithProcessSpread) {
  // Doubling the length sigma should raise every cell's leakage sigma.
  auto wide_len = test_process().length();
  process::LengthVariation len = wide_len;
  len.sigma_d2d_nm *= 2.0;
  len.sigma_wid_nm *= 2.0;
  const process::ProcessVariation wide(len, test_process().vt(),
                                       test_process().wid_correlation_ptr());
  const auto narrow_chars = mini_chars_analytic();
  const auto wide_chars = characterize_analytic(mini_library(), wide);
  for (std::size_t ci = 0; ci < narrow_chars.size(); ++ci)
    EXPECT_GT(wide_chars.cell(ci).states[0].sigma_na, narrow_chars.cell(ci).states[0].sigma_na);
}

}  // namespace
}  // namespace rgleak::charlib
