#include "charlib/correlation_map.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "math/rng.h"
#include "math/stats.h"
#include "util/require.h"

namespace rgleak::charlib {
namespace {

using rgleak::testing::mini_chars_analytic;
using rgleak::testing::mini_library;

math::LogQuadraticModel model_a() { return {2.0e4, -0.12, 0.0025}; }
math::LogQuadraticModel model_b() { return {5.0e3, -0.08, 0.0015}; }

constexpr double kMu = 40.0, kSigma = 2.5;

// The mixture tests must evaluate pair expectations at the SAME length
// statistics the fixture library was characterized with.
double fixture_sigma() { return rgleak::testing::test_process().length().sigma_total_nm(); }

TEST(PairMoments, ZeroRhoFactorizes) {
  const double e = pair_product_expectation(model_a(), model_b(), kMu, kSigma, 0.0);
  const math::LogQuadraticMoments ma(model_a(), kMu, kSigma);
  const math::LogQuadraticMoments mb(model_b(), kMu, kSigma);
  EXPECT_NEAR(e, ma.mean() * mb.mean(), 1e-9 * e);
  EXPECT_NEAR(pair_leakage_covariance(model_a(), model_b(), kMu, kSigma, 0.0), 0.0,
              1e-9 * e);
  EXPECT_NEAR(pair_leakage_correlation(model_a(), model_b(), kMu, kSigma, 0.0), 0.0, 1e-9);
}

TEST(PairMoments, IdenticalModelsAtRhoOneGiveVariance) {
  const math::LogQuadraticMoments ma(model_a(), kMu, kSigma);
  const double cov = pair_leakage_covariance(model_a(), model_a(), kMu, kSigma, 1.0);
  EXPECT_NEAR(cov, ma.variance(), 1e-8 * ma.variance());
  EXPECT_NEAR(pair_leakage_correlation(model_a(), model_a(), kMu, kSigma, 1.0), 1.0, 1e-8);
}

TEST(PairMoments, CorrelationMonotoneInRho) {
  double prev = -1.0;
  for (double rho = 0.0; rho <= 1.0; rho += 0.05) {
    const double f = pair_leakage_correlation(model_a(), model_b(), kMu, kSigma, rho);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(PairMoments, MappingIsCloseToIdentity) {
  // Fig. 2 of the paper: f_{m,n} hugs the y = x line.
  for (double rho = 0.0; rho <= 1.0; rho += 0.1) {
    const double f = pair_leakage_correlation(model_a(), model_b(), kMu, kSigma, rho);
    EXPECT_NEAR(f, rho, 0.08) << "rho=" << rho;
  }
}

TEST(PairMoments, MatchesMonteCarlo) {
  const double rho = 0.55;
  math::Rng rng(99);
  math::RunningCovariance cov;
  const auto ma = model_a();
  const auto mb = model_b();
  for (int i = 0; i < 400000; ++i) {
    const double z1 = rng.normal();
    const double z2 = rho * z1 + std::sqrt(1 - rho * rho) * rng.normal();
    cov.add(ma(kMu + kSigma * z1), mb(kMu + kSigma * z2));
  }
  const double closed = pair_leakage_correlation(ma, mb, kMu, kSigma, rho);
  EXPECT_NEAR(closed, cov.correlation(), 0.01);
}

TEST(RgComponents, WeightsAreUsageTimesStateProbability) {
  const auto& chars = mini_chars_analytic();
  std::vector<double> usage(chars.size(), 0.0);
  usage[mini_library().index_of("INV_X1")] = 0.6;
  usage[mini_library().index_of("NAND2_X1")] = 0.4;
  const auto comps = make_rg_components(chars, usage, 0.5);
  // INV contributes 2 states, NAND2 contributes 4.
  ASSERT_EQ(comps.size(), 6u);
  double total = 0.0;
  for (const auto& c : comps) total += c.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RgComponents, DropsZeroWeightStates) {
  const auto& chars = mini_chars_analytic();
  std::vector<double> usage(chars.size(), 0.0);
  usage[mini_library().index_of("NAND2_X1")] = 1.0;
  // p = 0: only state 00 survives.
  const auto comps = make_rg_components(chars, usage, 0.0);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_NEAR(comps[0].weight, 1.0, 1e-12);
}

TEST(RgComponents, ContractChecks) {
  const auto& chars = mini_chars_analytic();
  std::vector<double> bad(chars.size(), 0.0);
  EXPECT_THROW(make_rg_components(chars, bad, 0.5), ContractViolation);  // sums to 0
  bad.assign(chars.size() - 1, 0.1);
  EXPECT_THROW(make_rg_components(chars, bad, 0.5), ContractViolation);  // wrong size
}

std::vector<RgComponent> test_components() {
  const auto& chars = mini_chars_analytic();
  std::vector<double> usage(chars.size(), 0.0);
  usage[mini_library().index_of("INV_X1")] = 0.5;
  usage[mini_library().index_of("NOR2_X1")] = 0.5;
  return make_rg_components(chars, usage, 0.5);
}

TEST(AnalyticRgCovariance, MixtureMeanAndVarianceMatchEquations) {
  const auto comps = test_components();
  const AnalyticRgCovariance cov(comps, kMu, fixture_sigma());
  // Eqs (7)-(8) by hand.
  double mean = 0.0, second = 0.0;
  for (const auto& c : comps) {
    mean += c.weight * c.mean_na;
    second += c.weight * (c.sigma_na * c.sigma_na + c.mean_na * c.mean_na);
  }
  EXPECT_NEAR(cov.mean(), mean, 1e-9 * mean);
  EXPECT_NEAR(cov.variance(), second - mean * mean, 1e-6 * cov.variance());
}

TEST(AnalyticRgCovariance, ZeroAtZeroRho) {
  const AnalyticRgCovariance cov(test_components(), kMu, fixture_sigma());
  EXPECT_NEAR(cov.covariance(0.0), 0.0, 1e-6 * cov.variance());
}

TEST(AnalyticRgCovariance, MonotoneAndBelowVariance) {
  const AnalyticRgCovariance cov(test_components(), kMu, fixture_sigma());
  double prev = -1.0;
  for (double rho = 0.0; rho <= 1.0; rho += 0.02) {
    const double f = cov.covariance(rho);
    EXPECT_GE(f, prev);
    prev = f;
  }
  // F(1) < sigma^2_XI: same-location variance includes gate-choice variance.
  EXPECT_LT(cov.covariance(1.0), cov.variance());
}

TEST(AnalyticRgCovariance, GridInterpolationAccurate) {
  // A coarse grid must agree with a fine grid everywhere.
  const auto comps = test_components();
  const AnalyticRgCovariance coarse(comps, kMu, fixture_sigma(), 17);
  const AnalyticRgCovariance fine(comps, kMu, fixture_sigma(), 257);
  for (double rho = 0.0; rho <= 1.0; rho += 0.013) {
    EXPECT_NEAR(coarse.covariance(rho), fine.covariance(rho),
                2e-3 * fine.variance() + 1e-12)
        << "rho=" << rho;
  }
}

TEST(AnalyticRgCovariance, RequiresModels) {
  auto comps = test_components();
  comps[0].model.reset();
  EXPECT_THROW(AnalyticRgCovariance(comps, kMu, fixture_sigma()), ContractViolation);
}

TEST(SimplifiedRgCovariance, LinearInRho) {
  const auto comps = test_components();
  const SimplifiedRgCovariance cov(comps);
  double s = 0.0;
  for (const auto& c : comps) s += c.weight * c.sigma_na;
  EXPECT_NEAR(cov.covariance(1.0), s * s, 1e-9 * s * s);
  EXPECT_NEAR(cov.covariance(0.25), 0.25 * s * s, 1e-9 * s * s);
  EXPECT_DOUBLE_EQ(cov.covariance(0.0), 0.0);
}

TEST(SimplifiedVsAnalytic, CloseForOurLibrary) {
  // Section 3.1.2: the rho_mn = rho_L simplification changes the covariance
  // by only a few percent.
  const auto comps = test_components();
  const AnalyticRgCovariance a(comps, kMu, fixture_sigma());
  const SimplifiedRgCovariance s(comps);
  for (double rho : {0.2, 0.5, 0.8, 1.0}) {
    EXPECT_NEAR(a.covariance(rho), s.covariance(rho), 0.10 * a.covariance(1.0))
        << "rho=" << rho;
  }
}

}  // namespace
}  // namespace rgleak::charlib
