# Empty compiler generated dependencies file for bench_iscas89_sequential.
# This may be replaced when dependencies are built.
