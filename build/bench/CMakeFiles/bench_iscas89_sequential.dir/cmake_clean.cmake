file(REMOVE_RECURSE
  "CMakeFiles/bench_iscas89_sequential.dir/bench_iscas89_sequential.cpp.o"
  "CMakeFiles/bench_iscas89_sequential.dir/bench_iscas89_sequential.cpp.o.d"
  "bench_iscas89_sequential"
  "bench_iscas89_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iscas89_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
