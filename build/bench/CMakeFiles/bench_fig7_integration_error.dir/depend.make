# Empty dependencies file for bench_fig7_integration_error.
# This may be replaced when dependencies are built.
