file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_iscas85.dir/bench_table1_iscas85.cpp.o"
  "CMakeFiles/bench_table1_iscas85.dir/bench_table1_iscas85.cpp.o.d"
  "bench_table1_iscas85"
  "bench_table1_iscas85.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_iscas85.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
