# Empty compiler generated dependencies file for bench_table1_iscas85.
# This may be replaced when dependencies are built.
