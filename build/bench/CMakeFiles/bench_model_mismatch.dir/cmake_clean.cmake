file(REMOVE_RECURSE
  "CMakeFiles/bench_model_mismatch.dir/bench_model_mismatch.cpp.o"
  "CMakeFiles/bench_model_mismatch.dir/bench_model_mismatch.cpp.o.d"
  "bench_model_mismatch"
  "bench_model_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
