# Empty compiler generated dependencies file for bench_model_mismatch.
# This may be replaced when dependencies are built.
