# Empty compiler generated dependencies file for bench_ablation_multivt.
# This may be replaced when dependencies are built.
