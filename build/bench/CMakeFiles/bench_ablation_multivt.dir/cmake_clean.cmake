file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multivt.dir/bench_ablation_multivt.cpp.o"
  "CMakeFiles/bench_ablation_multivt.dir/bench_ablation_multivt.cpp.o.d"
  "bench_ablation_multivt"
  "bench_ablation_multivt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multivt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
