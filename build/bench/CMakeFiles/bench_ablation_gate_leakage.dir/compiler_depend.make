# Empty compiler generated dependencies file for bench_ablation_gate_leakage.
# This may be replaced when dependencies are built.
