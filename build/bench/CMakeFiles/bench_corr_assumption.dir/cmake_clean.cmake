file(REMOVE_RECURSE
  "CMakeFiles/bench_corr_assumption.dir/bench_corr_assumption.cpp.o"
  "CMakeFiles/bench_corr_assumption.dir/bench_corr_assumption.cpp.o.d"
  "bench_corr_assumption"
  "bench_corr_assumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corr_assumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
