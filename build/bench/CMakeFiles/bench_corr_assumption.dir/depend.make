# Empty dependencies file for bench_corr_assumption.
# This may be replaced when dependencies are built.
