file(REMOVE_RECURSE
  "CMakeFiles/bench_calibration_loop.dir/bench_calibration_loop.cpp.o"
  "CMakeFiles/bench_calibration_loop.dir/bench_calibration_loop.cpp.o.d"
  "bench_calibration_loop"
  "bench_calibration_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_calibration_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
