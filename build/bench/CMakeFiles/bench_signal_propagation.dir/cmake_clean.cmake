file(REMOVE_RECURSE
  "CMakeFiles/bench_signal_propagation.dir/bench_signal_propagation.cpp.o"
  "CMakeFiles/bench_signal_propagation.dir/bench_signal_propagation.cpp.o.d"
  "bench_signal_propagation"
  "bench_signal_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signal_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
