# Empty dependencies file for bench_signal_propagation.
# This may be replaced when dependencies are built.
