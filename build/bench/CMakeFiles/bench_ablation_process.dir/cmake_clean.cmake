file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_process.dir/bench_ablation_process.cpp.o"
  "CMakeFiles/bench_ablation_process.dir/bench_ablation_process.cpp.o.d"
  "bench_ablation_process"
  "bench_ablation_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
