# Empty compiler generated dependencies file for bench_ablation_process.
# This may be replaced when dependencies are built.
