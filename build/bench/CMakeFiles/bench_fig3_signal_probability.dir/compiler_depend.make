# Empty compiler generated dependencies file for bench_fig3_signal_probability.
# This may be replaced when dependencies are built.
