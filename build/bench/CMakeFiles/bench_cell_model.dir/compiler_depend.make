# Empty compiler generated dependencies file for bench_cell_model.
# This may be replaced when dependencies are built.
