file(REMOVE_RECURSE
  "CMakeFiles/bench_cell_model.dir/bench_cell_model.cpp.o"
  "CMakeFiles/bench_cell_model.dir/bench_cell_model.cpp.o.d"
  "bench_cell_model"
  "bench_cell_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cell_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
