file(REMOVE_RECURSE
  "CMakeFiles/bench_vt_contribution.dir/bench_vt_contribution.cpp.o"
  "CMakeFiles/bench_vt_contribution.dir/bench_vt_contribution.cpp.o.d"
  "bench_vt_contribution"
  "bench_vt_contribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vt_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
