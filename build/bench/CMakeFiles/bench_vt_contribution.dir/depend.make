# Empty dependencies file for bench_vt_contribution.
# This may be replaced when dependencies are built.
