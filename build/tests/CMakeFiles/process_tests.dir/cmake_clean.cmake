file(REMOVE_RECURSE
  "CMakeFiles/process_tests.dir/process/test_anisotropy.cpp.o"
  "CMakeFiles/process_tests.dir/process/test_anisotropy.cpp.o.d"
  "CMakeFiles/process_tests.dir/process/test_correlation_fit.cpp.o"
  "CMakeFiles/process_tests.dir/process/test_correlation_fit.cpp.o.d"
  "CMakeFiles/process_tests.dir/process/test_field_sampler.cpp.o"
  "CMakeFiles/process_tests.dir/process/test_field_sampler.cpp.o.d"
  "CMakeFiles/process_tests.dir/process/test_quadtree_model.cpp.o"
  "CMakeFiles/process_tests.dir/process/test_quadtree_model.cpp.o.d"
  "CMakeFiles/process_tests.dir/process/test_spatial_correlation.cpp.o"
  "CMakeFiles/process_tests.dir/process/test_spatial_correlation.cpp.o.d"
  "CMakeFiles/process_tests.dir/process/test_variation.cpp.o"
  "CMakeFiles/process_tests.dir/process/test_variation.cpp.o.d"
  "process_tests"
  "process_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
