file(REMOVE_RECURSE
  "CMakeFiles/cells_tests.dir/cells/test_cell.cpp.o"
  "CMakeFiles/cells_tests.dir/cells/test_cell.cpp.o.d"
  "CMakeFiles/cells_tests.dir/cells/test_expr.cpp.o"
  "CMakeFiles/cells_tests.dir/cells/test_expr.cpp.o.d"
  "CMakeFiles/cells_tests.dir/cells/test_library.cpp.o"
  "CMakeFiles/cells_tests.dir/cells/test_library.cpp.o.d"
  "CMakeFiles/cells_tests.dir/cells/test_random_cells.cpp.o"
  "CMakeFiles/cells_tests.dir/cells/test_random_cells.cpp.o.d"
  "CMakeFiles/cells_tests.dir/cells/test_spice_writer.cpp.o"
  "CMakeFiles/cells_tests.dir/cells/test_spice_writer.cpp.o.d"
  "cells_tests"
  "cells_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cells_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
