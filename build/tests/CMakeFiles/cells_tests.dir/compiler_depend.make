# Empty compiler generated dependencies file for cells_tests.
# This may be replaced when dependencies are built.
