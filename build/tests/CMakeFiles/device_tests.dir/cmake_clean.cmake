file(REMOVE_RECURSE
  "CMakeFiles/device_tests.dir/device/test_network.cpp.o"
  "CMakeFiles/device_tests.dir/device/test_network.cpp.o.d"
  "CMakeFiles/device_tests.dir/device/test_stack_properties.cpp.o"
  "CMakeFiles/device_tests.dir/device/test_stack_properties.cpp.o.d"
  "CMakeFiles/device_tests.dir/device/test_subthreshold.cpp.o"
  "CMakeFiles/device_tests.dir/device/test_subthreshold.cpp.o.d"
  "CMakeFiles/device_tests.dir/device/test_temperature.cpp.o"
  "CMakeFiles/device_tests.dir/device/test_temperature.cpp.o.d"
  "device_tests"
  "device_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
