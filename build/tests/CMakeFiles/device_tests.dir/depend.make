# Empty dependencies file for device_tests.
# This may be replaced when dependencies are built.
