file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/test_anisotropic_estimation.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_anisotropic_estimation.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_connectivity_estimator.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_connectivity_estimator.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_corner_analysis.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_corner_analysis.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_estimators.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_estimators.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_floorplan_optimizer.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_floorplan_optimizer.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_leakage_estimator.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_leakage_estimator.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_multi_block.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_multi_block.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_multi_vt.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_multi_vt.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_properties.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_properties.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_random_gate.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_random_gate.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_region_analysis.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_region_analysis.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_sensitivity.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_sensitivity.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_signal_probability.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_signal_probability.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_yield.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_yield.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
