
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_anisotropic_estimation.cpp" "tests/CMakeFiles/core_tests.dir/core/test_anisotropic_estimation.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_anisotropic_estimation.cpp.o.d"
  "/root/repo/tests/core/test_connectivity_estimator.cpp" "tests/CMakeFiles/core_tests.dir/core/test_connectivity_estimator.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_connectivity_estimator.cpp.o.d"
  "/root/repo/tests/core/test_corner_analysis.cpp" "tests/CMakeFiles/core_tests.dir/core/test_corner_analysis.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_corner_analysis.cpp.o.d"
  "/root/repo/tests/core/test_estimators.cpp" "tests/CMakeFiles/core_tests.dir/core/test_estimators.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_estimators.cpp.o.d"
  "/root/repo/tests/core/test_floorplan_optimizer.cpp" "tests/CMakeFiles/core_tests.dir/core/test_floorplan_optimizer.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_floorplan_optimizer.cpp.o.d"
  "/root/repo/tests/core/test_leakage_estimator.cpp" "tests/CMakeFiles/core_tests.dir/core/test_leakage_estimator.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_leakage_estimator.cpp.o.d"
  "/root/repo/tests/core/test_multi_block.cpp" "tests/CMakeFiles/core_tests.dir/core/test_multi_block.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_multi_block.cpp.o.d"
  "/root/repo/tests/core/test_multi_vt.cpp" "tests/CMakeFiles/core_tests.dir/core/test_multi_vt.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_multi_vt.cpp.o.d"
  "/root/repo/tests/core/test_properties.cpp" "tests/CMakeFiles/core_tests.dir/core/test_properties.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_properties.cpp.o.d"
  "/root/repo/tests/core/test_random_gate.cpp" "tests/CMakeFiles/core_tests.dir/core/test_random_gate.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_random_gate.cpp.o.d"
  "/root/repo/tests/core/test_region_analysis.cpp" "tests/CMakeFiles/core_tests.dir/core/test_region_analysis.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_region_analysis.cpp.o.d"
  "/root/repo/tests/core/test_sensitivity.cpp" "tests/CMakeFiles/core_tests.dir/core/test_sensitivity.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_sensitivity.cpp.o.d"
  "/root/repo/tests/core/test_signal_probability.cpp" "tests/CMakeFiles/core_tests.dir/core/test_signal_probability.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_signal_probability.cpp.o.d"
  "/root/repo/tests/core/test_yield.cpp" "tests/CMakeFiles/core_tests.dir/core/test_yield.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rgleak_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/rgleak_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/charlib/CMakeFiles/rgleak_charlib.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rgleak_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/rgleak_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/rgleak_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/rgleak_device.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/rgleak_process.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rgleak_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rgleak_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
