file(REMOVE_RECURSE
  "CMakeFiles/netlist_tests.dir/netlist/test_connectivity.cpp.o"
  "CMakeFiles/netlist_tests.dir/netlist/test_connectivity.cpp.o.d"
  "CMakeFiles/netlist_tests.dir/netlist/test_io.cpp.o"
  "CMakeFiles/netlist_tests.dir/netlist/test_io.cpp.o.d"
  "CMakeFiles/netlist_tests.dir/netlist/test_iscas89.cpp.o"
  "CMakeFiles/netlist_tests.dir/netlist/test_iscas89.cpp.o.d"
  "CMakeFiles/netlist_tests.dir/netlist/test_netlist.cpp.o"
  "CMakeFiles/netlist_tests.dir/netlist/test_netlist.cpp.o.d"
  "CMakeFiles/netlist_tests.dir/placement/test_placement.cpp.o"
  "CMakeFiles/netlist_tests.dir/placement/test_placement.cpp.o.d"
  "netlist_tests"
  "netlist_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
