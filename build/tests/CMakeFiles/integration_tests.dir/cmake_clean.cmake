file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/test_end_to_end.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/test_end_to_end.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/test_golden_values.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/test_golden_values.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
