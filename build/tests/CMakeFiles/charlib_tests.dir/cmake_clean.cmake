file(REMOVE_RECURSE
  "CMakeFiles/charlib_tests.dir/charlib/test_characterize.cpp.o"
  "CMakeFiles/charlib_tests.dir/charlib/test_characterize.cpp.o.d"
  "CMakeFiles/charlib_tests.dir/charlib/test_correlation_map.cpp.o"
  "CMakeFiles/charlib_tests.dir/charlib/test_correlation_map.cpp.o.d"
  "CMakeFiles/charlib_tests.dir/charlib/test_io.cpp.o"
  "CMakeFiles/charlib_tests.dir/charlib/test_io.cpp.o.d"
  "CMakeFiles/charlib_tests.dir/charlib/test_leakage_table.cpp.o"
  "CMakeFiles/charlib_tests.dir/charlib/test_leakage_table.cpp.o.d"
  "CMakeFiles/charlib_tests.dir/charlib/test_liberty_writer.cpp.o"
  "CMakeFiles/charlib_tests.dir/charlib/test_liberty_writer.cpp.o.d"
  "CMakeFiles/charlib_tests.dir/charlib/test_vt_statistics.cpp.o"
  "CMakeFiles/charlib_tests.dir/charlib/test_vt_statistics.cpp.o.d"
  "charlib_tests"
  "charlib_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlib_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
