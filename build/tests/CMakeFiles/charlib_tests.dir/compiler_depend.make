# Empty compiler generated dependencies file for charlib_tests.
# This may be replaced when dependencies are built.
