file(REMOVE_RECURSE
  "CMakeFiles/mc_tests.dir/mc/test_full_chip_mc.cpp.o"
  "CMakeFiles/mc_tests.dir/mc/test_full_chip_mc.cpp.o.d"
  "mc_tests"
  "mc_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
