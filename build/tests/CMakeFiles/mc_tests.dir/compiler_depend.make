# Empty compiler generated dependencies file for mc_tests.
# This may be replaced when dependencies are built.
