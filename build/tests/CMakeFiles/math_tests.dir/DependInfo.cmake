
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/math/test_fft.cpp" "tests/CMakeFiles/math_tests.dir/math/test_fft.cpp.o" "gcc" "tests/CMakeFiles/math_tests.dir/math/test_fft.cpp.o.d"
  "/root/repo/tests/math/test_gaussian_moments.cpp" "tests/CMakeFiles/math_tests.dir/math/test_gaussian_moments.cpp.o" "gcc" "tests/CMakeFiles/math_tests.dir/math/test_gaussian_moments.cpp.o.d"
  "/root/repo/tests/math/test_histogram.cpp" "tests/CMakeFiles/math_tests.dir/math/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/math_tests.dir/math/test_histogram.cpp.o.d"
  "/root/repo/tests/math/test_linalg.cpp" "tests/CMakeFiles/math_tests.dir/math/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/math_tests.dir/math/test_linalg.cpp.o.d"
  "/root/repo/tests/math/test_mgf.cpp" "tests/CMakeFiles/math_tests.dir/math/test_mgf.cpp.o" "gcc" "tests/CMakeFiles/math_tests.dir/math/test_mgf.cpp.o.d"
  "/root/repo/tests/math/test_polyfit.cpp" "tests/CMakeFiles/math_tests.dir/math/test_polyfit.cpp.o" "gcc" "tests/CMakeFiles/math_tests.dir/math/test_polyfit.cpp.o.d"
  "/root/repo/tests/math/test_quadrature.cpp" "tests/CMakeFiles/math_tests.dir/math/test_quadrature.cpp.o" "gcc" "tests/CMakeFiles/math_tests.dir/math/test_quadrature.cpp.o.d"
  "/root/repo/tests/math/test_rng.cpp" "tests/CMakeFiles/math_tests.dir/math/test_rng.cpp.o" "gcc" "tests/CMakeFiles/math_tests.dir/math/test_rng.cpp.o.d"
  "/root/repo/tests/math/test_stats.cpp" "tests/CMakeFiles/math_tests.dir/math/test_stats.cpp.o" "gcc" "tests/CMakeFiles/math_tests.dir/math/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rgleak_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/rgleak_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/charlib/CMakeFiles/rgleak_charlib.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rgleak_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/rgleak_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/rgleak_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/rgleak_device.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/rgleak_process.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rgleak_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rgleak_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
