file(REMOVE_RECURSE
  "CMakeFiles/math_tests.dir/math/test_fft.cpp.o"
  "CMakeFiles/math_tests.dir/math/test_fft.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/test_gaussian_moments.cpp.o"
  "CMakeFiles/math_tests.dir/math/test_gaussian_moments.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/test_histogram.cpp.o"
  "CMakeFiles/math_tests.dir/math/test_histogram.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/test_linalg.cpp.o"
  "CMakeFiles/math_tests.dir/math/test_linalg.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/test_mgf.cpp.o"
  "CMakeFiles/math_tests.dir/math/test_mgf.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/test_polyfit.cpp.o"
  "CMakeFiles/math_tests.dir/math/test_polyfit.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/test_quadrature.cpp.o"
  "CMakeFiles/math_tests.dir/math/test_quadrature.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/test_rng.cpp.o"
  "CMakeFiles/math_tests.dir/math/test_rng.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/test_stats.cpp.o"
  "CMakeFiles/math_tests.dir/math/test_stats.cpp.o.d"
  "math_tests"
  "math_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
