file(REMOVE_RECURSE
  "CMakeFiles/util_tests.dir/util/test_table.cpp.o"
  "CMakeFiles/util_tests.dir/util/test_table.cpp.o.d"
  "util_tests"
  "util_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
