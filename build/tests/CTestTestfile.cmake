# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_tests "/root/repo/build/tests/util_tests")
set_tests_properties(util_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;rgleak_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(math_tests "/root/repo/build/tests/math_tests")
set_tests_properties(math_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;17;rgleak_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(process_tests "/root/repo/build/tests/process_tests")
set_tests_properties(process_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;29;rgleak_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(device_tests "/root/repo/build/tests/device_tests")
set_tests_properties(device_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;38;rgleak_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cells_tests "/root/repo/build/tests/cells_tests")
set_tests_properties(cells_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;45;rgleak_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(charlib_tests "/root/repo/build/tests/charlib_tests")
set_tests_properties(charlib_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;53;rgleak_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(netlist_tests "/root/repo/build/tests/netlist_tests")
set_tests_properties(netlist_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;62;rgleak_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_tests "/root/repo/build/tests/core_tests")
set_tests_properties(core_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;70;rgleak_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mc_tests "/root/repo/build/tests/mc_tests")
set_tests_properties(mc_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;87;rgleak_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_tests "/root/repo/build/tests/integration_tests")
set_tests_properties(integration_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;91;rgleak_test;/root/repo/tests/CMakeLists.txt;0;")
