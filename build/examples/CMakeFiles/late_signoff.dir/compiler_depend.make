# Empty compiler generated dependencies file for late_signoff.
# This may be replaced when dependencies are built.
