file(REMOVE_RECURSE
  "CMakeFiles/late_signoff.dir/late_signoff.cpp.o"
  "CMakeFiles/late_signoff.dir/late_signoff.cpp.o.d"
  "late_signoff"
  "late_signoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/late_signoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
