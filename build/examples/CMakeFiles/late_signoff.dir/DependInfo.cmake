
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/late_signoff.cpp" "examples/CMakeFiles/late_signoff.dir/late_signoff.cpp.o" "gcc" "examples/CMakeFiles/late_signoff.dir/late_signoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rgleak_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/rgleak_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/charlib/CMakeFiles/rgleak_charlib.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rgleak_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/rgleak_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/rgleak_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/rgleak_device.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/rgleak_process.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rgleak_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rgleak_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
