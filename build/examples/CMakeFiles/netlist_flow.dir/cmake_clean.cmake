file(REMOVE_RECURSE
  "CMakeFiles/netlist_flow.dir/netlist_flow.cpp.o"
  "CMakeFiles/netlist_flow.dir/netlist_flow.cpp.o.d"
  "netlist_flow"
  "netlist_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
