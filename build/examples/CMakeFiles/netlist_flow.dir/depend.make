# Empty dependencies file for netlist_flow.
# This may be replaced when dependencies are built.
