file(REMOVE_RECURSE
  "CMakeFiles/block_floorplan.dir/block_floorplan.cpp.o"
  "CMakeFiles/block_floorplan.dir/block_floorplan.cpp.o.d"
  "block_floorplan"
  "block_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
