# Empty compiler generated dependencies file for block_floorplan.
# This may be replaced when dependencies are built.
