file(REMOVE_RECURSE
  "CMakeFiles/leakage_map.dir/leakage_map.cpp.o"
  "CMakeFiles/leakage_map.dir/leakage_map.cpp.o.d"
  "leakage_map"
  "leakage_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
