# Empty compiler generated dependencies file for leakage_map.
# This may be replaced when dependencies are built.
