file(REMOVE_RECURSE
  "CMakeFiles/corner_signoff.dir/corner_signoff.cpp.o"
  "CMakeFiles/corner_signoff.dir/corner_signoff.cpp.o.d"
  "corner_signoff"
  "corner_signoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corner_signoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
