# Empty dependencies file for corner_signoff.
# This may be replaced when dependencies are built.
