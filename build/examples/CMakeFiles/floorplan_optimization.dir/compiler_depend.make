# Empty compiler generated dependencies file for floorplan_optimization.
# This may be replaced when dependencies are built.
