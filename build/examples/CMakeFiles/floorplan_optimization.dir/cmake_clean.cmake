file(REMOVE_RECURSE
  "CMakeFiles/floorplan_optimization.dir/floorplan_optimization.cpp.o"
  "CMakeFiles/floorplan_optimization.dir/floorplan_optimization.cpp.o.d"
  "floorplan_optimization"
  "floorplan_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floorplan_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
