file(REMOVE_RECURSE
  "CMakeFiles/early_planning.dir/early_planning.cpp.o"
  "CMakeFiles/early_planning.dir/early_planning.cpp.o.d"
  "early_planning"
  "early_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
