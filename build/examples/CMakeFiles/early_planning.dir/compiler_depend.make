# Empty compiler generated dependencies file for early_planning.
# This may be replaced when dependencies are built.
