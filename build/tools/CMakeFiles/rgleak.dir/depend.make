# Empty dependencies file for rgleak.
# This may be replaced when dependencies are built.
