file(REMOVE_RECURSE
  "CMakeFiles/rgleak.dir/rgleak_cli.cpp.o"
  "CMakeFiles/rgleak.dir/rgleak_cli.cpp.o.d"
  "rgleak"
  "rgleak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgleak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
