file(REMOVE_RECURSE
  "librgleak_mc.a"
)
