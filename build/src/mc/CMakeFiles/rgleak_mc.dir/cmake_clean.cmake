file(REMOVE_RECURSE
  "CMakeFiles/rgleak_mc.dir/full_chip_mc.cpp.o"
  "CMakeFiles/rgleak_mc.dir/full_chip_mc.cpp.o.d"
  "librgleak_mc.a"
  "librgleak_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgleak_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
