# Empty dependencies file for rgleak_mc.
# This may be replaced when dependencies are built.
