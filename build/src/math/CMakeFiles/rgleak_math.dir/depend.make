# Empty dependencies file for rgleak_math.
# This may be replaced when dependencies are built.
