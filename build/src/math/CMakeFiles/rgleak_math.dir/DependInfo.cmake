
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/fft.cpp" "src/math/CMakeFiles/rgleak_math.dir/fft.cpp.o" "gcc" "src/math/CMakeFiles/rgleak_math.dir/fft.cpp.o.d"
  "/root/repo/src/math/gaussian_moments.cpp" "src/math/CMakeFiles/rgleak_math.dir/gaussian_moments.cpp.o" "gcc" "src/math/CMakeFiles/rgleak_math.dir/gaussian_moments.cpp.o.d"
  "/root/repo/src/math/histogram.cpp" "src/math/CMakeFiles/rgleak_math.dir/histogram.cpp.o" "gcc" "src/math/CMakeFiles/rgleak_math.dir/histogram.cpp.o.d"
  "/root/repo/src/math/linalg.cpp" "src/math/CMakeFiles/rgleak_math.dir/linalg.cpp.o" "gcc" "src/math/CMakeFiles/rgleak_math.dir/linalg.cpp.o.d"
  "/root/repo/src/math/mgf.cpp" "src/math/CMakeFiles/rgleak_math.dir/mgf.cpp.o" "gcc" "src/math/CMakeFiles/rgleak_math.dir/mgf.cpp.o.d"
  "/root/repo/src/math/polyfit.cpp" "src/math/CMakeFiles/rgleak_math.dir/polyfit.cpp.o" "gcc" "src/math/CMakeFiles/rgleak_math.dir/polyfit.cpp.o.d"
  "/root/repo/src/math/quadrature.cpp" "src/math/CMakeFiles/rgleak_math.dir/quadrature.cpp.o" "gcc" "src/math/CMakeFiles/rgleak_math.dir/quadrature.cpp.o.d"
  "/root/repo/src/math/rng.cpp" "src/math/CMakeFiles/rgleak_math.dir/rng.cpp.o" "gcc" "src/math/CMakeFiles/rgleak_math.dir/rng.cpp.o.d"
  "/root/repo/src/math/stats.cpp" "src/math/CMakeFiles/rgleak_math.dir/stats.cpp.o" "gcc" "src/math/CMakeFiles/rgleak_math.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rgleak_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
