file(REMOVE_RECURSE
  "CMakeFiles/rgleak_math.dir/fft.cpp.o"
  "CMakeFiles/rgleak_math.dir/fft.cpp.o.d"
  "CMakeFiles/rgleak_math.dir/gaussian_moments.cpp.o"
  "CMakeFiles/rgleak_math.dir/gaussian_moments.cpp.o.d"
  "CMakeFiles/rgleak_math.dir/histogram.cpp.o"
  "CMakeFiles/rgleak_math.dir/histogram.cpp.o.d"
  "CMakeFiles/rgleak_math.dir/linalg.cpp.o"
  "CMakeFiles/rgleak_math.dir/linalg.cpp.o.d"
  "CMakeFiles/rgleak_math.dir/mgf.cpp.o"
  "CMakeFiles/rgleak_math.dir/mgf.cpp.o.d"
  "CMakeFiles/rgleak_math.dir/polyfit.cpp.o"
  "CMakeFiles/rgleak_math.dir/polyfit.cpp.o.d"
  "CMakeFiles/rgleak_math.dir/quadrature.cpp.o"
  "CMakeFiles/rgleak_math.dir/quadrature.cpp.o.d"
  "CMakeFiles/rgleak_math.dir/rng.cpp.o"
  "CMakeFiles/rgleak_math.dir/rng.cpp.o.d"
  "CMakeFiles/rgleak_math.dir/stats.cpp.o"
  "CMakeFiles/rgleak_math.dir/stats.cpp.o.d"
  "librgleak_math.a"
  "librgleak_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgleak_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
