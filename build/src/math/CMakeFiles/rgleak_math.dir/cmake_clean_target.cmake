file(REMOVE_RECURSE
  "librgleak_math.a"
)
