# Empty compiler generated dependencies file for rgleak_cells.
# This may be replaced when dependencies are built.
