file(REMOVE_RECURSE
  "librgleak_cells.a"
)
