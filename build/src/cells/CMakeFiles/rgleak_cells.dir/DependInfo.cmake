
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/cell.cpp" "src/cells/CMakeFiles/rgleak_cells.dir/cell.cpp.o" "gcc" "src/cells/CMakeFiles/rgleak_cells.dir/cell.cpp.o.d"
  "/root/repo/src/cells/expr.cpp" "src/cells/CMakeFiles/rgleak_cells.dir/expr.cpp.o" "gcc" "src/cells/CMakeFiles/rgleak_cells.dir/expr.cpp.o.d"
  "/root/repo/src/cells/library.cpp" "src/cells/CMakeFiles/rgleak_cells.dir/library.cpp.o" "gcc" "src/cells/CMakeFiles/rgleak_cells.dir/library.cpp.o.d"
  "/root/repo/src/cells/spice_writer.cpp" "src/cells/CMakeFiles/rgleak_cells.dir/spice_writer.cpp.o" "gcc" "src/cells/CMakeFiles/rgleak_cells.dir/spice_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/rgleak_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rgleak_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
