file(REMOVE_RECURSE
  "CMakeFiles/rgleak_cells.dir/cell.cpp.o"
  "CMakeFiles/rgleak_cells.dir/cell.cpp.o.d"
  "CMakeFiles/rgleak_cells.dir/expr.cpp.o"
  "CMakeFiles/rgleak_cells.dir/expr.cpp.o.d"
  "CMakeFiles/rgleak_cells.dir/library.cpp.o"
  "CMakeFiles/rgleak_cells.dir/library.cpp.o.d"
  "CMakeFiles/rgleak_cells.dir/spice_writer.cpp.o"
  "CMakeFiles/rgleak_cells.dir/spice_writer.cpp.o.d"
  "librgleak_cells.a"
  "librgleak_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgleak_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
