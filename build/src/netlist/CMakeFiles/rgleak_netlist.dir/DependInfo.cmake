
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/connectivity.cpp" "src/netlist/CMakeFiles/rgleak_netlist.dir/connectivity.cpp.o" "gcc" "src/netlist/CMakeFiles/rgleak_netlist.dir/connectivity.cpp.o.d"
  "/root/repo/src/netlist/io.cpp" "src/netlist/CMakeFiles/rgleak_netlist.dir/io.cpp.o" "gcc" "src/netlist/CMakeFiles/rgleak_netlist.dir/io.cpp.o.d"
  "/root/repo/src/netlist/iscas85.cpp" "src/netlist/CMakeFiles/rgleak_netlist.dir/iscas85.cpp.o" "gcc" "src/netlist/CMakeFiles/rgleak_netlist.dir/iscas85.cpp.o.d"
  "/root/repo/src/netlist/iscas89.cpp" "src/netlist/CMakeFiles/rgleak_netlist.dir/iscas89.cpp.o" "gcc" "src/netlist/CMakeFiles/rgleak_netlist.dir/iscas89.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/rgleak_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/rgleak_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/random_circuit.cpp" "src/netlist/CMakeFiles/rgleak_netlist.dir/random_circuit.cpp.o" "gcc" "src/netlist/CMakeFiles/rgleak_netlist.dir/random_circuit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cells/CMakeFiles/rgleak_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rgleak_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rgleak_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/rgleak_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
