file(REMOVE_RECURSE
  "CMakeFiles/rgleak_netlist.dir/connectivity.cpp.o"
  "CMakeFiles/rgleak_netlist.dir/connectivity.cpp.o.d"
  "CMakeFiles/rgleak_netlist.dir/io.cpp.o"
  "CMakeFiles/rgleak_netlist.dir/io.cpp.o.d"
  "CMakeFiles/rgleak_netlist.dir/iscas85.cpp.o"
  "CMakeFiles/rgleak_netlist.dir/iscas85.cpp.o.d"
  "CMakeFiles/rgleak_netlist.dir/iscas89.cpp.o"
  "CMakeFiles/rgleak_netlist.dir/iscas89.cpp.o.d"
  "CMakeFiles/rgleak_netlist.dir/netlist.cpp.o"
  "CMakeFiles/rgleak_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/rgleak_netlist.dir/random_circuit.cpp.o"
  "CMakeFiles/rgleak_netlist.dir/random_circuit.cpp.o.d"
  "librgleak_netlist.a"
  "librgleak_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgleak_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
