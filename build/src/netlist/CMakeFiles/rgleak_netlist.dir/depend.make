# Empty dependencies file for rgleak_netlist.
# This may be replaced when dependencies are built.
