file(REMOVE_RECURSE
  "librgleak_netlist.a"
)
