file(REMOVE_RECURSE
  "librgleak_util.a"
)
