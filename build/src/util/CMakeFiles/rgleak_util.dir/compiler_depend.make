# Empty compiler generated dependencies file for rgleak_util.
# This may be replaced when dependencies are built.
