file(REMOVE_RECURSE
  "CMakeFiles/rgleak_util.dir/table.cpp.o"
  "CMakeFiles/rgleak_util.dir/table.cpp.o.d"
  "librgleak_util.a"
  "librgleak_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgleak_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
