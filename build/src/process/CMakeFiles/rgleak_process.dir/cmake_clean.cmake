file(REMOVE_RECURSE
  "CMakeFiles/rgleak_process.dir/correlation_fit.cpp.o"
  "CMakeFiles/rgleak_process.dir/correlation_fit.cpp.o.d"
  "CMakeFiles/rgleak_process.dir/field_sampler.cpp.o"
  "CMakeFiles/rgleak_process.dir/field_sampler.cpp.o.d"
  "CMakeFiles/rgleak_process.dir/quadtree_model.cpp.o"
  "CMakeFiles/rgleak_process.dir/quadtree_model.cpp.o.d"
  "CMakeFiles/rgleak_process.dir/spatial_correlation.cpp.o"
  "CMakeFiles/rgleak_process.dir/spatial_correlation.cpp.o.d"
  "CMakeFiles/rgleak_process.dir/variation.cpp.o"
  "CMakeFiles/rgleak_process.dir/variation.cpp.o.d"
  "librgleak_process.a"
  "librgleak_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgleak_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
