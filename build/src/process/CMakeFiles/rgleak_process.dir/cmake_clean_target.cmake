file(REMOVE_RECURSE
  "librgleak_process.a"
)
