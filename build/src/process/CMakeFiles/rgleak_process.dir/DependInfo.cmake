
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/process/correlation_fit.cpp" "src/process/CMakeFiles/rgleak_process.dir/correlation_fit.cpp.o" "gcc" "src/process/CMakeFiles/rgleak_process.dir/correlation_fit.cpp.o.d"
  "/root/repo/src/process/field_sampler.cpp" "src/process/CMakeFiles/rgleak_process.dir/field_sampler.cpp.o" "gcc" "src/process/CMakeFiles/rgleak_process.dir/field_sampler.cpp.o.d"
  "/root/repo/src/process/quadtree_model.cpp" "src/process/CMakeFiles/rgleak_process.dir/quadtree_model.cpp.o" "gcc" "src/process/CMakeFiles/rgleak_process.dir/quadtree_model.cpp.o.d"
  "/root/repo/src/process/spatial_correlation.cpp" "src/process/CMakeFiles/rgleak_process.dir/spatial_correlation.cpp.o" "gcc" "src/process/CMakeFiles/rgleak_process.dir/spatial_correlation.cpp.o.d"
  "/root/repo/src/process/variation.cpp" "src/process/CMakeFiles/rgleak_process.dir/variation.cpp.o" "gcc" "src/process/CMakeFiles/rgleak_process.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/rgleak_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rgleak_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
