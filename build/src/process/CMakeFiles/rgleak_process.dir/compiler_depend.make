# Empty compiler generated dependencies file for rgleak_process.
# This may be replaced when dependencies are built.
