file(REMOVE_RECURSE
  "CMakeFiles/rgleak_device.dir/network.cpp.o"
  "CMakeFiles/rgleak_device.dir/network.cpp.o.d"
  "CMakeFiles/rgleak_device.dir/subthreshold.cpp.o"
  "CMakeFiles/rgleak_device.dir/subthreshold.cpp.o.d"
  "librgleak_device.a"
  "librgleak_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgleak_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
