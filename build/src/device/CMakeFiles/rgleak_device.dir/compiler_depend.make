# Empty compiler generated dependencies file for rgleak_device.
# This may be replaced when dependencies are built.
