file(REMOVE_RECURSE
  "librgleak_device.a"
)
