file(REMOVE_RECURSE
  "CMakeFiles/rgleak_placement.dir/placement.cpp.o"
  "CMakeFiles/rgleak_placement.dir/placement.cpp.o.d"
  "librgleak_placement.a"
  "librgleak_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgleak_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
