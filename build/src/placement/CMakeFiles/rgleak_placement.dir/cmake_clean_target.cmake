file(REMOVE_RECURSE
  "librgleak_placement.a"
)
