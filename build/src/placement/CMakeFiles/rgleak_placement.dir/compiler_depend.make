# Empty compiler generated dependencies file for rgleak_placement.
# This may be replaced when dependencies are built.
