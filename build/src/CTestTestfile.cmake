# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("math")
subdirs("process")
subdirs("device")
subdirs("cells")
subdirs("charlib")
subdirs("netlist")
subdirs("placement")
subdirs("core")
subdirs("mc")
