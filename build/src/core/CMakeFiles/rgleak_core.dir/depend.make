# Empty dependencies file for rgleak_core.
# This may be replaced when dependencies are built.
