
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/connectivity_estimator.cpp" "src/core/CMakeFiles/rgleak_core.dir/connectivity_estimator.cpp.o" "gcc" "src/core/CMakeFiles/rgleak_core.dir/connectivity_estimator.cpp.o.d"
  "/root/repo/src/core/corner_analysis.cpp" "src/core/CMakeFiles/rgleak_core.dir/corner_analysis.cpp.o" "gcc" "src/core/CMakeFiles/rgleak_core.dir/corner_analysis.cpp.o.d"
  "/root/repo/src/core/estimators.cpp" "src/core/CMakeFiles/rgleak_core.dir/estimators.cpp.o" "gcc" "src/core/CMakeFiles/rgleak_core.dir/estimators.cpp.o.d"
  "/root/repo/src/core/floorplan_optimizer.cpp" "src/core/CMakeFiles/rgleak_core.dir/floorplan_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/rgleak_core.dir/floorplan_optimizer.cpp.o.d"
  "/root/repo/src/core/leakage_estimator.cpp" "src/core/CMakeFiles/rgleak_core.dir/leakage_estimator.cpp.o" "gcc" "src/core/CMakeFiles/rgleak_core.dir/leakage_estimator.cpp.o.d"
  "/root/repo/src/core/multi_block.cpp" "src/core/CMakeFiles/rgleak_core.dir/multi_block.cpp.o" "gcc" "src/core/CMakeFiles/rgleak_core.dir/multi_block.cpp.o.d"
  "/root/repo/src/core/multi_vt.cpp" "src/core/CMakeFiles/rgleak_core.dir/multi_vt.cpp.o" "gcc" "src/core/CMakeFiles/rgleak_core.dir/multi_vt.cpp.o.d"
  "/root/repo/src/core/random_gate.cpp" "src/core/CMakeFiles/rgleak_core.dir/random_gate.cpp.o" "gcc" "src/core/CMakeFiles/rgleak_core.dir/random_gate.cpp.o.d"
  "/root/repo/src/core/region_analysis.cpp" "src/core/CMakeFiles/rgleak_core.dir/region_analysis.cpp.o" "gcc" "src/core/CMakeFiles/rgleak_core.dir/region_analysis.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/rgleak_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/rgleak_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/signal_probability.cpp" "src/core/CMakeFiles/rgleak_core.dir/signal_probability.cpp.o" "gcc" "src/core/CMakeFiles/rgleak_core.dir/signal_probability.cpp.o.d"
  "/root/repo/src/core/yield.cpp" "src/core/CMakeFiles/rgleak_core.dir/yield.cpp.o" "gcc" "src/core/CMakeFiles/rgleak_core.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/charlib/CMakeFiles/rgleak_charlib.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rgleak_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/rgleak_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/rgleak_process.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rgleak_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rgleak_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/rgleak_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/rgleak_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
