file(REMOVE_RECURSE
  "librgleak_core.a"
)
