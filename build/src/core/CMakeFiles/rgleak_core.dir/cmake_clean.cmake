file(REMOVE_RECURSE
  "CMakeFiles/rgleak_core.dir/connectivity_estimator.cpp.o"
  "CMakeFiles/rgleak_core.dir/connectivity_estimator.cpp.o.d"
  "CMakeFiles/rgleak_core.dir/corner_analysis.cpp.o"
  "CMakeFiles/rgleak_core.dir/corner_analysis.cpp.o.d"
  "CMakeFiles/rgleak_core.dir/estimators.cpp.o"
  "CMakeFiles/rgleak_core.dir/estimators.cpp.o.d"
  "CMakeFiles/rgleak_core.dir/floorplan_optimizer.cpp.o"
  "CMakeFiles/rgleak_core.dir/floorplan_optimizer.cpp.o.d"
  "CMakeFiles/rgleak_core.dir/leakage_estimator.cpp.o"
  "CMakeFiles/rgleak_core.dir/leakage_estimator.cpp.o.d"
  "CMakeFiles/rgleak_core.dir/multi_block.cpp.o"
  "CMakeFiles/rgleak_core.dir/multi_block.cpp.o.d"
  "CMakeFiles/rgleak_core.dir/multi_vt.cpp.o"
  "CMakeFiles/rgleak_core.dir/multi_vt.cpp.o.d"
  "CMakeFiles/rgleak_core.dir/random_gate.cpp.o"
  "CMakeFiles/rgleak_core.dir/random_gate.cpp.o.d"
  "CMakeFiles/rgleak_core.dir/region_analysis.cpp.o"
  "CMakeFiles/rgleak_core.dir/region_analysis.cpp.o.d"
  "CMakeFiles/rgleak_core.dir/sensitivity.cpp.o"
  "CMakeFiles/rgleak_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/rgleak_core.dir/signal_probability.cpp.o"
  "CMakeFiles/rgleak_core.dir/signal_probability.cpp.o.d"
  "CMakeFiles/rgleak_core.dir/yield.cpp.o"
  "CMakeFiles/rgleak_core.dir/yield.cpp.o.d"
  "librgleak_core.a"
  "librgleak_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgleak_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
