# Empty dependencies file for rgleak_charlib.
# This may be replaced when dependencies are built.
