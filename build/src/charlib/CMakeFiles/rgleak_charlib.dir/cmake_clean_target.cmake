file(REMOVE_RECURSE
  "librgleak_charlib.a"
)
