
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/charlib/characterize.cpp" "src/charlib/CMakeFiles/rgleak_charlib.dir/characterize.cpp.o" "gcc" "src/charlib/CMakeFiles/rgleak_charlib.dir/characterize.cpp.o.d"
  "/root/repo/src/charlib/correlation_map.cpp" "src/charlib/CMakeFiles/rgleak_charlib.dir/correlation_map.cpp.o" "gcc" "src/charlib/CMakeFiles/rgleak_charlib.dir/correlation_map.cpp.o.d"
  "/root/repo/src/charlib/io.cpp" "src/charlib/CMakeFiles/rgleak_charlib.dir/io.cpp.o" "gcc" "src/charlib/CMakeFiles/rgleak_charlib.dir/io.cpp.o.d"
  "/root/repo/src/charlib/leakage_table.cpp" "src/charlib/CMakeFiles/rgleak_charlib.dir/leakage_table.cpp.o" "gcc" "src/charlib/CMakeFiles/rgleak_charlib.dir/leakage_table.cpp.o.d"
  "/root/repo/src/charlib/liberty_writer.cpp" "src/charlib/CMakeFiles/rgleak_charlib.dir/liberty_writer.cpp.o" "gcc" "src/charlib/CMakeFiles/rgleak_charlib.dir/liberty_writer.cpp.o.d"
  "/root/repo/src/charlib/vt_statistics.cpp" "src/charlib/CMakeFiles/rgleak_charlib.dir/vt_statistics.cpp.o" "gcc" "src/charlib/CMakeFiles/rgleak_charlib.dir/vt_statistics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cells/CMakeFiles/rgleak_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/rgleak_process.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rgleak_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rgleak_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/rgleak_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
