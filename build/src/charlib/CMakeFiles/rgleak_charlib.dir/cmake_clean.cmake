file(REMOVE_RECURSE
  "CMakeFiles/rgleak_charlib.dir/characterize.cpp.o"
  "CMakeFiles/rgleak_charlib.dir/characterize.cpp.o.d"
  "CMakeFiles/rgleak_charlib.dir/correlation_map.cpp.o"
  "CMakeFiles/rgleak_charlib.dir/correlation_map.cpp.o.d"
  "CMakeFiles/rgleak_charlib.dir/io.cpp.o"
  "CMakeFiles/rgleak_charlib.dir/io.cpp.o.d"
  "CMakeFiles/rgleak_charlib.dir/leakage_table.cpp.o"
  "CMakeFiles/rgleak_charlib.dir/leakage_table.cpp.o.d"
  "CMakeFiles/rgleak_charlib.dir/liberty_writer.cpp.o"
  "CMakeFiles/rgleak_charlib.dir/liberty_writer.cpp.o.d"
  "CMakeFiles/rgleak_charlib.dir/vt_statistics.cpp.o"
  "CMakeFiles/rgleak_charlib.dir/vt_statistics.cpp.o.d"
  "librgleak_charlib.a"
  "librgleak_charlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgleak_charlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
