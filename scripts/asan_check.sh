#!/usr/bin/env bash
# AddressSanitizer pass over the failure-path tests: fault injection, the
# malformed-input corpora (netlist + checkpoint), the exception-unwinding pool
# paths, and the batch service layer (ctest label: robustness). Exceptions
# flying out of worker threads and aborted parses are exactly where leaks and
# use-after-frees hide; ASan proves the error paths release what they took.
# Uses its own build tree so the regular build stays uninstrumented.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-asan
cmake -B "$BUILD" -S . -DRGLEAK_SANITIZE=address >/dev/null
cmake --build "$BUILD" --target util_tests service_tests robustness_tests -j "$(nproc)"

export ASAN_OPTIONS="detect_leaks=1 halt_on_error=1 ${ASAN_OPTIONS:-}"
"$BUILD"/tests/util_tests --gtest_filter='ThreadPool.*:Failpoint.*:ErrorTaxonomy.*:Backoff.*:FakeClock.*'
# Everything labelled robustness in ctest: the service suite and the fault
# injection / corpus / soak suite. handle_segv=0/handle_abort=0: the process
# isolation tests deliberately segfault/abort sandboxed children, and those
# must die on the real signal (so the supervisor classifies them) instead of
# being turned into an ASan report.
(cd "$BUILD" && \
  ASAN_OPTIONS="handle_segv=0 handle_abort=0 $ASAN_OPTIONS" \
  ctest -L robustness --output-on-failure)
echo "asan_check: OK"
