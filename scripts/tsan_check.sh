#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrency-sensitive tests: the thread pool,
# the parallel/concurrent exact-estimator paths, threaded Monte Carlo, and the
# batch service layer (MPMC job queue, concurrent batch soak).
# Part of the tier-1 verify flow (see ROADMAP.md). Uses its own build tree so
# the regular build stays uninstrumented.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-tsan
cmake -B "$BUILD" -S . -DRGLEAK_SANITIZE=thread >/dev/null
cmake --build "$BUILD" --target util_tests core_tests mc_tests service_tests robustness_tests -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
# *Metrics*: the lock-free instruments (relaxed counters/histograms, the
# registry mutex, snapshot readers racing recorders) under real threads.
"$BUILD"/tests/util_tests --gtest_filter='ThreadPool.*:*Metrics*'
"$BUILD"/tests/core_tests --gtest_filter='*Concurrent*:*ThreadCounts*:*FftPathMatchesDirectPath*'
"$BUILD"/tests/mc_tests --gtest_filter='*Threaded*'
# The service layer's shared-state hot spots: blocked producers/consumers on
# the bounded queue, the shared retry budget, workers appending to one
# journal while the 200-job soak injects faults, and the stall watchdog's
# monitor thread sampling worker heartbeats while slots publish and clear.
"$BUILD"/tests/service_tests --gtest_filter='*Concurrent*:*Stall*'
# Fault injection under TSan: a worker throwing mid-job must not race the
# pool's rendezvous or leave it unusable. *Threaded* adds the threaded MC
# worker rounds (per-worker workspaces + the background checkpoint flusher)
# driven through the robustness suite's interrupt/resume scenarios.
"$BUILD"/tests/robustness_tests --gtest_filter='*Concurrent*:*Threaded*'
# Process isolation: the fork-per-job supervisor (shared-memory heartbeat
# page, concurrent stall monitor, supervisor reap loop) and the crash-matrix
# soak. TSan kills forked children of a multithreaded parent by default;
# die_after_fork=0 is safe here because sandboxed children are single-threaded
# by construction (fork only, no thread creation before _exit). handle_segv=0
# handle_abort=0: injected child crashes must die on the real signal so the
# supervisor classifies a SIGSEGV/SIGABRT wait status, not a sanitizer exit.
TSAN_OPTIONS="die_after_fork=0 handle_segv=0 handle_abort=0 $TSAN_OPTIONS" \
  "$BUILD"/tests/service_tests --gtest_filter='*Isolate*'
TSAN_OPTIONS="die_after_fork=0 handle_segv=0 handle_abort=0 $TSAN_OPTIONS" \
  "$BUILD"/tests/robustness_tests --gtest_filter='*Isolate*'
echo "tsan_check: OK"
