// rgleak — command-line front end to the library.
//
//   rgleak characterize --out lib.rgchar [process options]
//   rgleak estimate     --lib lib.rgchar --gates N --die-um WxH
//                       --usage "INV_X1:0.4,NAND2_X1:0.6"
//                       [--method linear|rect|polar] [--p VALUE|max]
//                       [--budget-ua X] [--quantile Q]
//   rgleak netlist      --lib lib.rgchar --netlist file.rgnl --die-um WxH
//                       (late mode: extract characteristics, estimate, and
//                        compare against the exact O(n^2) analysis)
//   rgleak gen-netlist  --out file.rgnl --gates N
//                       --usage "INV_X1:0.5,NAND2_X1:0.5" [--seed S]
//
// The library ships the virtual 90 nm cell set; the characterization file
// pins the process corner.

#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cells/library.h"
#include "cells/spice_writer.h"
#include "charlib/characterize.h"
#include "core/corner_analysis.h"
#include "charlib/io.h"
#include "charlib/liberty_writer.h"
#include "core/estimators.h"
#include "core/leakage_estimator.h"
#include "core/memory_cost.h"
#include "core/method_cost.h"
#include "core/sensitivity.h"
#include "core/yield.h"
#include "mc/full_chip_mc.h"
#include "netlist/io.h"
#include "netlist/random_circuit.h"
#include "process/variation.h"
#include "service/batch_runner.h"
#include "service/job_runner.h"
#include "util/atomic_file.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/memory.h"
#include "util/metrics.h"
#include "util/run_control.h"
#include "util/table.h"
#include "util/trace.h"

using namespace rgleak;

namespace {

// Process-wide run control: commands that support cooperative cancellation
// arm it (--time-budget) and install handle_signal so Ctrl-C drains cleanly
// (checkpoint, exit code 6) instead of killing the process mid-write.
util::RunControl g_run;

extern "C" void handle_signal(int) { g_run.request_stop(util::StopReason::kCancelled); }

[[noreturn]] void usage_exit(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  rgleak characterize --out FILE [--mode analytic|mc] [--mean-l NM]\n"
               "                      [--sigma-d2d NM] [--sigma-wid NM] [--sigma-vt V]\n"
               "                      [--corr exponential|gaussian|linear|spherical]\n"
               "                      [--corr-scale-um UM]\n"
               "  rgleak estimate --lib FILE --gates N --die-um WxH --usage SPEC\n"
               "                  [--method auto|linear|rect|polar] [--p VALUE|max]\n"
               "                  [--budget-ua X] [--quantile Q]\n"
               "  rgleak netlist --lib FILE --netlist FILE [--exact 1]\n"
               "                 [--exact-method auto|direct|fft] [--threads N]\n"
               "                 [--time-budget SECONDS] [--cost-model BENCH.json]\n"
               "  rgleak mc --lib FILE --netlist FILE [--trials N] [--seed S]\n"
               "            [--threads N] [--p VALUE] [--resample] [--eval bucketed|per-gate]\n"
               "            [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]\n"
               "            [--time-budget SECONDS]\n"
               "  rgleak batch --manifest JOBS.jsonl [--journal FILE] [--workers N]\n"
               "               [--max-retries N] [--backoff MS] [--backoff-cap MS]\n"
               "               [--retry-budget N] [--queue-depth N]\n"
               "               [--shed-policy block|reject-new|drop-oldest]\n"
               "               [--job-deadline SECONDS] [--stall-timeout SECONDS]\n"
               "               [--mem-budget auto|none|SIZE] [--mem-model BENCH.json]\n"
               "               [--jitter-seed S] [--isolate in-process|process]\n"
               "               [--isolate-grace SECONDS]\n"
               "  rgleak gen-netlist --out FILE --gates N --usage SPEC [--seed S]\n"
               "  rgleak sweep --lib FILE --usage SPEC --die-um WxH\n"
               "               --gates-from N --gates-to N [--steps K]\n"
               "  rgleak liberty --lib FILE --out FILE.lib\n"
               "  rgleak spice --out FILE.sp\n"
               "  rgleak corners --lib FILE --usage SPEC --gates N\n"
               "  rgleak sensitivity --lib FILE --usage SPEC --gates N\n"
               "\n"
               "usage SPEC: comma-separated cell:weight pairs, e.g. INV_X1:0.4,NAND2_X1:0.6\n"
               "global flags: --error-json (one-line JSON error reports on stderr)\n"
               "              --trace FILE (append one JSONL span per phase/attempt;\n"
               "              sandboxed children inherit it via RGLEAK_TRACE)\n"
               "              --metrics-json FILE (dump the metrics registry snapshot\n"
               "              at exit)\n"
               "              --progress (mc/batch: one status line per second on\n"
               "              stderr: done/failed/retrying/queue/trials-per-s)\n"
               "              --failpoint SITE:ACTION[:COUNT[:DELAY_MS]] or\n"
               "              SITE:exit:CODE[:COUNT] (repeatable; ACTION is throw, nan,\n"
               "              delay, alloc, abort, segv, or exit — fault injection; abort/\n"
               "              segv/exit kill the process and are meant for sandboxed\n"
               "              children under --isolate=process)\n"
               "isolate:      process = fork one rlimited child per job attempt; a\n"
               "              crashing job becomes a journaled failure (exit code 9 class)\n"
               "              instead of killing the batch. Default in-process, or the\n"
               "              RGLEAK_ISOLATE=process environment override.\n"
               "mem-budget SIZE: bytes with an optional k/m/g suffix, e.g. 512m;\n"
               "              auto = detect from cgroup / RLIMIT_AS, none = unlimited\n"
               "exit codes: 0 ok, 1 internal, 2 usage/config, 3 parse, 4 numerical, 5 io,\n"
               "            6 deadline/cancelled (SIGINT or --time-budget expiry),\n"
               "            7 batch completed but some jobs failed or were shed,\n"
               "            8 resource (memory budget exceeded or allocation failed),\n"
               "            9 crash (a sandboxed job child died on a signal)\n");
  std::exit(2);
}

// Flags that take no value; present means "1".
bool is_boolean_flag(const std::string& key) {
  return key == "error-json" || key == "resample" || key == "progress";
}

std::map<std::string, std::string> parse_flags(int argc, char** argv, int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage_exit(("unexpected argument: " + key).c_str());
    key = key.substr(2);
    if (is_boolean_flag(key)) {
      flags[key] = "1";
      continue;
    }
    if (key == "failpoint") {
      // Repeatable: accumulate newline-separated specs.
      if (i + 1 >= argc) usage_exit("missing value for --failpoint");
      std::string& specs = flags["failpoint"];
      if (!specs.empty()) specs += '\n';
      specs += argv[++i];
      continue;
    }
    if (i + 1 >= argc) usage_exit(("missing value for --" + key).c_str());
    flags[key] = argv[++i];
  }
  return flags;
}

// Checked numeric parsers: the whole token must convert, no silent atof-style
// "0 on garbage".
double parse_double(const std::string& s, const std::string& what) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0')
    usage_exit((what + " expects a number, got: " + s).c_str());
  // strtod happily accepts "nan"/"inf", and NaN slides past every
  // `<= 0.0` range guard downstream — "--time-budget nan" would arm a NaN
  // deadline instead of failing. No flag has a meaningful non-finite value,
  // so reject them all here.
  if (!std::isfinite(v)) usage_exit((what + " expects a finite number, got: " + s).c_str());
  return v;
}

long long parse_int(const std::string& s, const std::string& what) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0')
    usage_exit((what + " expects an integer, got: " + s).c_str());
  return v;
}

std::size_t parse_count(const std::string& s, const std::string& what) {
  const long long v = parse_int(s, what);
  if (v < 0) usage_exit((what + " must be non-negative, got: " + s).c_str());
  return static_cast<std::size_t>(v);
}

std::string flag(const std::map<std::string, std::string>& flags, const std::string& key,
                 const std::string& fallback = "") {
  const auto it = flags.find(key);
  if (it != flags.end()) return it->second;
  if (fallback.empty()) usage_exit(("required flag missing: --" + key).c_str());
  return fallback;
}

bool has_flag(const std::map<std::string, std::string>& flags, const std::string& key) {
  return flags.count(key) > 0;
}

// --progress: a background thread that prints one status line per second on
// stderr, fed entirely from the metrics registry (the same counters --trace
// and --metrics-json see). Construction is a no-op when disabled.
class ProgressPrinter {
 public:
  explicit ProgressPrinter(bool enabled) {
    if (enabled) thread_ = std::thread([this] { loop(); });
  }
  ~ProgressPrinter() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(m_);
      quit_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  ProgressPrinter(const ProgressPrinter&) = delete;
  ProgressPrinter& operator=(const ProgressPrinter&) = delete;

 private:
  void loop() {
    auto& reg = util::metrics::Registry::instance();
    util::metrics::Counter& done = reg.counter("batch.jobs.succeeded");
    util::metrics::Counter& failed = reg.counter("batch.jobs.failed");
    util::metrics::Counter& retried = reg.counter("batch.jobs.retried");
    util::metrics::Gauge& queue = reg.gauge("batch.queue.depth");
    util::metrics::Counter& trials = reg.counter("mc.trials");
    std::uint64_t last_trials = trials.value();
    auto last = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(m_);
    while (!quit_) {
      if (cv_.wait_for(lock, std::chrono::seconds(1), [&] { return quit_; })) return;
      const auto now = std::chrono::steady_clock::now();
      const double dt = std::chrono::duration<double>(now - last).count();
      const std::uint64_t t = trials.value();
      const double tps = dt > 0.0 ? static_cast<double>(t - last_trials) / dt : 0.0;
      last_trials = t;
      last = now;
      std::fprintf(stderr,
                   "progress: done %llu failed %llu retrying %llu queue %lld mc %.0f trials/s\n",
                   static_cast<unsigned long long>(done.value()),
                   static_cast<unsigned long long>(failed.value()),
                   static_cast<unsigned long long>(retried.value()),
                   static_cast<long long>(queue.value()), tps);
    }
  }

  std::thread thread_;
  std::mutex m_;
  std::condition_variable cv_;
  bool quit_ = false;
};

netlist::UsageHistogram parse_usage(const cells::StdCellLibrary& lib, const std::string& spec) {
  netlist::UsageHistogram u;
  u.alphas.assign(lib.size(), 0.0);
  std::istringstream ss(spec);
  std::string item;
  double total = 0.0;
  while (std::getline(ss, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) usage_exit(("bad usage item: " + item).c_str());
    const std::string name = item.substr(0, colon);
    const double w = parse_double(item.substr(colon + 1), "usage weight");
    if (w <= 0.0) usage_exit(("bad usage weight in: " + item).c_str());
    u.alphas[lib.index_of(name)] += w;
    total += w;
  }
  if (total <= 0.0) usage_exit("usage spec is empty");
  for (double& a : u.alphas) a /= total;
  return u;
}

void parse_die(const std::string& spec, double& w_nm, double& h_nm) {
  const auto x = spec.find('x');
  if (x == std::string::npos) usage_exit(("bad --die-um, expected WxH: " + spec).c_str());
  w_nm = parse_double(spec.substr(0, x), "--die-um width") * 1000.0;
  h_nm = parse_double(spec.substr(x + 1), "--die-um height") * 1000.0;
  if (w_nm <= 0.0 || h_nm <= 0.0) usage_exit("die dimensions must be positive");
}

int cmd_characterize(const std::map<std::string, std::string>& flags) {
  const std::string out = flag(flags, "out");
  const std::string mode = flag(flags, "mode", "analytic");

  process::LengthVariation len;
  len.mean_nm = parse_double(flag(flags, "mean-l", "40"), "--mean-l");
  len.sigma_d2d_nm = parse_double(flag(flags, "sigma-d2d", "1.7678"), "--sigma-d2d");
  len.sigma_wid_nm = parse_double(flag(flags, "sigma-wid", "1.7678"), "--sigma-wid");
  process::VtVariation vt;
  vt.sigma_v = parse_double(flag(flags, "sigma-vt", "0.02"), "--sigma-vt");
  const std::string family = flag(flags, "corr", "exponential");
  const double scale_nm = parse_double(flag(flags, "corr-scale-um", "100"), "--corr-scale-um") * 1000.0;
  const process::ProcessVariation process(len, vt,
                                          process::make_correlation(family, scale_nm));

  const cells::StdCellLibrary& lib = cells::build_virtual90_library();
  std::printf("characterizing %zu cells (%s mode)...\n", lib.size(), mode.c_str());
  // Ctrl-C stops between (cell, state) pairs with exit code 6; the output
  // file is only written on completion, so no partial artifact appears.
  charlib::CharacterizedLibrary chars = [&] {
    if (mode == "mc") {
      charlib::McCharOptions opts;
      opts.run = &g_run;
      return charlib::characterize_monte_carlo(lib, process, opts);
    }
    charlib::AnalyticCharOptions opts;
    opts.run = &g_run;
    return charlib::characterize_analytic(lib, process, opts);
  }();
  charlib::save_characterization(chars, out);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

core::EstimationMethod parse_method(const std::string& m) {
  if (m == "auto") return core::EstimationMethod::kAuto;
  if (m == "linear") return core::EstimationMethod::kLinear;
  if (m == "rect") return core::EstimationMethod::kIntegralRect;
  if (m == "polar") return core::EstimationMethod::kIntegralPolar;
  usage_exit(("unknown method: " + m).c_str());
}

int cmd_estimate(const std::map<std::string, std::string>& flags) {
  const cells::StdCellLibrary& lib = cells::build_virtual90_library();
  const charlib::CharacterizedLibrary chars =
      charlib::load_characterization(lib, flag(flags, "lib"));

  core::DesignCharacteristics d;
  d.usage = parse_usage(lib, flag(flags, "usage"));
  d.gate_count = parse_count(flag(flags, "gates"), "--gates");
  parse_die(flag(flags, "die-um"), d.width_nm, d.height_nm);

  core::EstimatorConfig cfg;
  cfg.run = &g_run;
  cfg.method = parse_method(flag(flags, "method", "auto"));
  cfg.correlation_mode = chars.has_models() ? core::CorrelationMode::kAnalytic
                                            : core::CorrelationMode::kSimplified;
  const std::string p = flag(flags, "p", "max");
  if (p == "max") {
    cfg.maximize_signal_probability = true;
  } else {
    cfg.maximize_signal_probability = false;
    cfg.signal_probability = parse_double(p, "--p");
  }

  const core::LeakageEstimator estimator(chars, cfg);
  const core::LeakageEstimate e = estimator.estimate(d);
  std::printf("gates        : %zu\n", d.gate_count);
  std::printf("die          : %.1f x %.1f um\n", d.width_nm * 1e-3, d.height_nm * 1e-3);
  std::printf("mean leakage : %.4f uA\n", e.mean_na * 1e-3);
  std::printf("sigma        : %.4f uA  (%.2f%% of mean)\n", e.sigma_na * 1e-3, 100.0 * e.cv());

  const core::LeakageYieldModel yield(e);
  if (has_flag(flags, "quantile")) {
    const double q = parse_double(flag(flags, "quantile"), "--quantile");
    std::printf("P%.4g leakage: %.4f uA (log-normal model)\n", 100.0 * q,
                yield.quantile(q) * 1e-3);
  }
  if (has_flag(flags, "budget-ua")) {
    const double budget = parse_double(flag(flags, "budget-ua"), "--budget-ua") * 1000.0;
    std::printf("yield @ %.4g uA: %.4f%%\n", budget * 1e-3, 100.0 * yield.yield(budget));
  }
  return 0;
}

int cmd_netlist(const std::map<std::string, std::string>& flags) {
  // Validate before the file loads: a malformed --time-budget is a usage
  // error even when the inputs are missing or slow to parse.
  if (has_flag(flags, "time-budget")) {
    if (parse_double(flag(flags, "time-budget"), "--time-budget") <= 0.0)
      usage_exit("--time-budget must be positive");
  }
  const cells::StdCellLibrary& lib = cells::build_virtual90_library();
  const charlib::CharacterizedLibrary chars =
      charlib::load_characterization(lib, flag(flags, "lib"));
  const netlist::Netlist nl = netlist::load_netlist(lib, flag(flags, "netlist"));
  const placement::Floorplan fp = placement::Floorplan::for_gate_count(nl.size());
  const netlist::UsageHistogram usage = netlist::extract_usage(nl);

  const core::CorrelationMode mode = chars.has_models()
                                         ? core::CorrelationMode::kAnalytic
                                         : core::CorrelationMode::kSimplified;
  const core::RandomGate rg(chars, usage, 0.5, mode);
  const core::LeakageEstimate est = core::estimate_linear(rg, fp, &g_run);
  std::printf("netlist      : %s (%zu gates)\n", nl.name().c_str(), nl.size());
  std::printf("RG estimate  : mean %.4f uA, sigma %.4f uA\n", est.mean_na * 1e-3,
              est.sigma_na * 1e-3);

  if (has_flag(flags, "exact") || has_flag(flags, "exact-method")) {
    core::ExactOptions opts;
    const std::string method = flag(flags, "exact-method", "auto");
    if (method == "auto") {
      opts.method = core::ExactMethod::kAuto;
    } else if (method == "direct") {
      opts.method = core::ExactMethod::kDirect;
    } else if (method == "fft") {
      opts.method = core::ExactMethod::kFft;
    } else {
      usage_exit(("unknown exact method: " + method).c_str());
    }
    opts.threads = parse_count(flag(flags, "threads", "0"), "--threads");
    opts.run = &g_run;
    const placement::Placement pl(&nl, fp);
    const core::ExactEstimator exact(chars, 0.5, mode);
    const core::LeakageEstimate truth = exact.estimate(pl, opts);
    std::printf("exact (%s) : mean %.4f uA, sigma %.4f uA\n", method.c_str(),
                truth.mean_na * 1e-3, truth.sigma_na * 1e-3);
    std::printf("sigma error  : %.4f%%\n",
                100.0 * std::abs(est.sigma_na - truth.sigma_na) / truth.sigma_na);
  }

  if (has_flag(flags, "time-budget")) {
    // Budgeted ladder: exact -> linear -> integral, degrading whenever the
    // cost model predicts the next rung would blow the remaining budget.
    const double budget_s = parse_double(flag(flags, "time-budget"), "--time-budget");
    if (budget_s <= 0.0) usage_exit("--time-budget must be positive");
    const core::CostModel costs = has_flag(flags, "cost-model")
                                      ? core::CostModel::from_bench_json(flag(flags, "cost-model"))
                                      : core::CostModel::defaults();
    core::ExactOptions opts;
    opts.threads = parse_count(flag(flags, "threads", "0"), "--threads");
    const placement::Placement pl(&nl, fp);
    const core::ExactEstimator exact(chars, 0.5, mode);
    const core::LeakageEstimate e =
        core::estimate_placed_budgeted(exact, rg, pl, budget_s, costs, opts, &g_run);
    std::printf("budgeted (%.3gs): mean %.4f uA, sigma %.4f uA [method %s]\n", budget_s,
                e.mean_na * 1e-3, e.sigma_na * 1e-3, e.method.c_str());
    if (!e.degradation.empty()) std::printf("degraded     : %s\n", e.degradation.c_str());
  }
  return 0;
}

int cmd_mc(const std::map<std::string, std::string>& flags) {
  // Flag validation before the file loads, so a malformed --time-budget is a
  // usage error (exit 2) even when --lib points at a missing file. SIGINT/
  // SIGTERM request a cooperative stop (installed in main); a time budget
  // arms the same control. Either way the engine drains within one trial per
  // worker, writes a final checkpoint when --checkpoint is set, and exits
  // with code 6.
  if (has_flag(flags, "time-budget")) {
    const double budget_s = parse_double(flag(flags, "time-budget"), "--time-budget");
    if (budget_s <= 0.0) usage_exit("--time-budget must be positive");
    g_run.arm_budget(budget_s);
  }
  const cells::StdCellLibrary& lib = cells::build_virtual90_library();
  const charlib::CharacterizedLibrary chars =
      charlib::load_characterization(lib, flag(flags, "lib"));
  const netlist::Netlist nl = netlist::load_netlist(lib, flag(flags, "netlist"));
  const placement::Floorplan fp = placement::Floorplan::for_gate_count(nl.size());
  const placement::Placement pl(&nl, fp);

  mc::FullChipMcOptions opts;
  opts.trials = parse_count(flag(flags, "trials", "500"), "--trials");
  opts.seed = static_cast<std::uint64_t>(parse_int(flag(flags, "seed", "777"), "--seed"));
  opts.threads = parse_count(flag(flags, "threads", "1"), "--threads");
  opts.signal_probability = parse_double(flag(flags, "p", "0.5"), "--p");
  opts.resample_states_per_trial = has_flag(flags, "resample");
  const std::string eval_path = flag(flags, "eval", "bucketed");
  if (eval_path == "bucketed")
    opts.eval_path = mc::McEvalPath::kBucketed;
  else if (eval_path == "per-gate")
    opts.eval_path = mc::McEvalPath::kPerGate;
  else
    usage_exit("--eval must be 'bucketed' or 'per-gate'");
  if (has_flag(flags, "checkpoint")) opts.checkpoint_path = flag(flags, "checkpoint");
  opts.checkpoint_every = parse_count(flag(flags, "checkpoint-every", "0"), "--checkpoint-every");
  if (has_flag(flags, "resume")) opts.resume_path = flag(flags, "resume");

  opts.run = &g_run;

  mc::FullChipMonteCarlo engine(pl, chars, opts);
  mc::FullChipMcResult r;
  const ProgressPrinter progress(has_flag(flags, "progress"));
  try {
    const util::trace::Span span("mc.run");
    r = engine.run();
  } catch (const DeadlineExceeded&) {
    if (!opts.checkpoint_path.empty())
      std::fprintf(stderr, "checkpoint written to %s (continue with --resume %s)\n",
                   opts.checkpoint_path.c_str(), opts.checkpoint_path.c_str());
    throw;
  }
  std::printf("netlist      : %s (%zu gates)\n", nl.name().c_str(), nl.size());
  std::printf("trials       : %zu\n", r.trials);
  std::printf("MC mean      : %.4f uA\n", r.mean_na * 1e-3);
  std::printf("MC sigma     : %.4f uA  (%.2f%% of mean)\n", r.sigma_na * 1e-3,
              100.0 * r.sigma_na / r.mean_na);
  std::printf("P50/P90/P99  : %.4f / %.4f / %.4f uA\n", r.p50_na * 1e-3, r.p90_na * 1e-3,
              r.p99_na * 1e-3);
  return 0;
}

int cmd_batch(const std::map<std::string, std::string>& flags) {
  const cells::StdCellLibrary& lib = cells::build_virtual90_library();
  const std::vector<service::JobSpec> jobs = service::load_manifest(flag(flags, "manifest"));
  service::Journal journal =
      service::Journal::open(has_flag(flags, "journal") ? flag(flags, "journal") : std::string());

  service::BatchOptions opts;
  opts.retry.max_attempts =
      1 + static_cast<int>(parse_count(flag(flags, "max-retries", "2"), "--max-retries"));
  opts.retry.backoff.base_ms = parse_double(flag(flags, "backoff", "50"), "--backoff");
  opts.retry.backoff.cap_ms = parse_double(flag(flags, "backoff-cap", "5000"), "--backoff-cap");
  if (opts.retry.backoff.base_ms < 0.0 || opts.retry.backoff.cap_ms < opts.retry.backoff.base_ms)
    usage_exit("--backoff must be >= 0 and <= --backoff-cap");
  if (has_flag(flags, "retry-budget"))
    opts.retry.batch_retry_budget = parse_count(flag(flags, "retry-budget"), "--retry-budget");
  opts.queue_depth = parse_count(flag(flags, "queue-depth", "32"), "--queue-depth");
  if (opts.queue_depth == 0) usage_exit("--queue-depth must be positive");
  opts.shed_policy = service::parse_shed_policy(flag(flags, "shed-policy", "block"));
  opts.workers = parse_count(flag(flags, "workers", "0"), "--workers");
  if (has_flag(flags, "job-deadline")) {
    opts.job_deadline_s = parse_double(flag(flags, "job-deadline"), "--job-deadline");
    if (opts.job_deadline_s <= 0.0) usage_exit("--job-deadline must be positive");
  }
  if (has_flag(flags, "stall-timeout")) {
    opts.stall_timeout_s = parse_double(flag(flags, "stall-timeout"), "--stall-timeout");
    if (opts.stall_timeout_s <= 0.0) usage_exit("--stall-timeout must be positive");
  }
  opts.jitter_seed =
      static_cast<std::uint64_t>(parse_int(flag(flags, "jitter-seed", "24029"), "--jitter-seed"));
  opts.run = &g_run;

  // Attempt isolation. The flag default stays kDefault (not kInProcess) so
  // the RGLEAK_ISOLATE environment override can force sandboxing through an
  // unmodified command line (how CI runs the existing matrix sandboxed).
  const std::string isolate = flag(flags, "isolate", "default");
  if (isolate == "process") opts.isolate = service::ExecIsolation::kProcess;
  else if (isolate == "in-process") opts.isolate = service::ExecIsolation::kInProcess;
  else if (isolate != "default")
    usage_exit("--isolate must be 'in-process' or 'process'");
  if (has_flag(flags, "isolate-grace")) {
    opts.isolate_grace_s = parse_double(flag(flags, "isolate-grace"), "--isolate-grace");
    if (opts.isolate_grace_s < 0.0) usage_exit("--isolate-grace must be >= 0");
  }

  // Memory governance: the admission budget (predictive) and the process-wide
  // reservation limit (enforcing) are set to the same ceiling.
  const std::string mem_spec = flag(flags, "mem-budget", "auto");
  std::uint64_t mem_budget = 0;
  if (mem_spec == "auto") mem_budget = util::detect_memory_limit();
  else if (mem_spec != "none") mem_budget = util::parse_memory_size(mem_spec);
  util::MemoryBudget::process().set_limit(mem_budget);
  service::ResourceGovernor governor;
  governor.mem_budget_bytes = mem_budget;
  if (has_flag(flags, "mem-model"))
    governor.memory = core::MemoryCostModel::from_bench_json(flag(flags, "mem-model"));

  service::JobRunner runner(lib);
  runner.set_governor(&governor);
  const service::BatchSummary s = [&] {
    // Scoped so the printer joins (and stops writing to stderr) before the
    // summary block below.
    const ProgressPrinter progress(has_flag(flags, "progress"));
    return service::run_batch(jobs, runner, journal, opts);
  }();
  if (mem_budget > 0)
    std::printf("mem budget   : %.1f MiB (peak charged %.1f MiB)\n",
                static_cast<double>(mem_budget) / (1024.0 * 1024.0),
                static_cast<double>(util::MemoryBudget::process().peak()) / (1024.0 * 1024.0));

  std::printf("jobs         : %zu", s.total);
  if (s.skipped > 0) std::printf("  (%zu already done, skipped)", s.skipped);
  std::printf("\n");
  std::printf("succeeded    : %zu\n", s.succeeded);
  std::printf("failed       : %zu\n", s.failed);
  if (s.shed > 0) std::printf("shed         : %zu (policy %s)\n", s.shed,
                              service::shed_policy_name(opts.shed_policy));
  if (s.retries > 0) std::printf("retries      : %zu\n", s.retries);
  if (s.stalls > 0) std::printf("stalls       : %zu (cancelled by the stall watchdog)\n", s.stalls);
  if (s.crashes > 0)
    std::printf("crashes      : %zu (sandboxed child deaths, contained)\n", s.crashes);
  std::printf("queue depth  : %zu peak of %zu\n", s.queue_high_watermark, opts.queue_depth);
  if (s.journal_write_failures > 0)
    std::fprintf(stderr, "warning: %zu journal writes failed (records kept in memory)\n",
                 s.journal_write_failures);
  // Exit over the manifest's *terminal* outcomes, this run or a previous one
  // (a resume that skips failed jobs must not report success).
  std::size_t terminal_failures = 0;
  const auto records = journal.records();
  for (const service::JobSpec& job : jobs) {
    const auto it = records.find(job.id);
    if (it == records.end() || it->second.status == service::JobStatus::kSucceeded) continue;
    ++terminal_failures;
    std::fprintf(stderr, "%s\n", service::journal_record_json(it->second).c_str());
  }
  if (s.stopped) {
    std::fprintf(stderr, "batch stopped; %zu jobs unfinished", s.interrupted);
    if (!journal.path().empty())
      std::fprintf(stderr, " (re-run with the same --journal to resume)");
    std::fprintf(stderr, "\n");
    return 6;
  }
  return terminal_failures > 0 ? 7 : 0;
}

int cmd_gen_netlist(const std::map<std::string, std::string>& flags) {
  const cells::StdCellLibrary& lib = cells::build_virtual90_library();
  const std::size_t n = parse_count(flag(flags, "gates"), "--gates");
  const netlist::UsageHistogram usage = parse_usage(lib, flag(flags, "usage"));
  math::Rng rng(static_cast<std::uint64_t>(parse_int(flag(flags, "seed", "1"), "--seed")));
  const netlist::Netlist nl =
      netlist::generate_random_circuit(lib, usage, n, rng, netlist::UsageMatch::kExact,
                                       "generated");
  netlist::save_netlist(nl, flag(flags, "out"));
  std::printf("wrote %s (%zu gates)\n", flag(flags, "out").c_str(), nl.size());
  return 0;
}

int cmd_sweep(const std::map<std::string, std::string>& flags) {
  const cells::StdCellLibrary& lib = cells::build_virtual90_library();
  const charlib::CharacterizedLibrary chars =
      charlib::load_characterization(lib, flag(flags, "lib"));
  const netlist::UsageHistogram usage = parse_usage(lib, flag(flags, "usage"));
  double w_nm = 0.0, h_nm = 0.0;
  parse_die(flag(flags, "die-um"), w_nm, h_nm);
  const std::size_t from = parse_count(flag(flags, "gates-from"), "--gates-from");
  const std::size_t to = parse_count(flag(flags, "gates-to"), "--gates-to");
  const std::size_t steps = parse_count(flag(flags, "steps", "8"), "--steps");
  if (from == 0 || to < from || steps < 2) usage_exit("bad sweep range");

  core::EstimatorConfig cfg;
  cfg.run = &g_run;
  cfg.maximize_signal_probability = false;
  cfg.correlation_mode = chars.has_models() ? core::CorrelationMode::kAnalytic
                                            : core::CorrelationMode::kSimplified;
  const core::LeakageEstimator estimator(chars, cfg);

  util::Table t({"gates", "mean (uA)", "sigma (uA)", "sigma/mean %", "P99 (uA)"});
  for (std::size_t i = 0; i < steps; ++i) {
    // Geometric spacing.
    const double f = static_cast<double>(i) / static_cast<double>(steps - 1);
    const auto gates = static_cast<std::size_t>(
        std::round(from * std::pow(static_cast<double>(to) / from, f)));
    core::DesignCharacteristics d;
    d.usage = usage;
    d.gate_count = gates;
    d.width_nm = w_nm;
    d.height_nm = h_nm;
    const core::LeakageEstimate e = estimator.estimate(d);
    const core::LeakageYieldModel yield(e);
    t.row()
        .cell(static_cast<long long>(gates))
        .cell(e.mean_na * 1e-3, 5)
        .cell(e.sigma_na * 1e-3, 5)
        .cell(100.0 * e.cv(), 4)
        .cell(yield.quantile(0.99) * 1e-3, 5);
  }
  t.print(std::cout);
  return 0;
}

int cmd_liberty(const std::map<std::string, std::string>& flags) {
  const cells::StdCellLibrary& lib = cells::build_virtual90_library();
  const charlib::CharacterizedLibrary chars =
      charlib::load_characterization(lib, flag(flags, "lib"));
  charlib::write_liberty(chars, flag(flags, "out"));
  std::printf("wrote %s\n", flag(flags, "out").c_str());
  return 0;
}

int cmd_spice(const std::map<std::string, std::string>& flags) {
  const cells::StdCellLibrary& lib = cells::build_virtual90_library();
  cells::write_spice_library(lib, flag(flags, "out"));
  std::printf("wrote %s (%zu subcircuits)\n", flag(flags, "out").c_str(), lib.size());
  return 0;
}

int cmd_corners(const std::map<std::string, std::string>& flags) {
  const cells::StdCellLibrary& lib = cells::build_virtual90_library();
  const charlib::CharacterizedLibrary chars =
      charlib::load_characterization(lib, flag(flags, "lib"));
  const netlist::UsageHistogram usage = parse_usage(lib, flag(flags, "usage"));
  const std::size_t gates = parse_count(flag(flags, "gates"), "--gates");
  const auto corners =
      core::standard_corners(chars.process().length().sigma_d2d_nm);
  const auto results =
      core::analyze_corners(lib.tech(), chars.process(), usage, gates, corners);
  util::Table t({"corner", "mean (uA)", "sigma (uA)", "mean+3sigma (uA)"});
  for (const auto& r : results)
    t.row()
        .cell(r.corner.name)
        .cell(r.estimate.mean_na * 1e-3, 5)
        .cell(r.estimate.sigma_na * 1e-3, 5)
        .cell((r.estimate.mean_na + 3 * r.estimate.sigma_na) * 1e-3, 5);
  t.print(std::cout);
  std::printf("worst corner: %s\n", core::worst_corner(results).corner.name.c_str());
  return 0;
}

int cmd_sensitivity(const std::map<std::string, std::string>& flags) {
  const cells::StdCellLibrary& lib = cells::build_virtual90_library();
  const charlib::CharacterizedLibrary chars =
      charlib::load_characterization(lib, flag(flags, "lib"));
  const netlist::UsageHistogram usage = parse_usage(lib, flag(flags, "usage"));
  const std::size_t gates = parse_count(flag(flags, "gates"), "--gates");
  const auto entries = core::process_sensitivities(lib, chars.process(), usage, gates);
  util::Table t({"knob", "base value", "dln(mean)/dln(x)", "dln(sigma)/dln(x)"});
  for (const auto& e : entries)
    t.row().cell(e.parameter).cell(e.base_value, 5).cell(e.mean_elasticity, 4).cell(
        e.sigma_elasticity, 4);
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage_exit();
  const std::string cmd = argv[1];
  // Detected before flag parsing so even parse-time failures honor it.
  bool json_errors = false;
  for (int i = 2; i < argc; ++i)
    if (std::string(argv[i]) == "--error-json") json_errors = true;
  // Crash hygiene of last resort: an exception that escapes the catch blocks
  // below (throwing destructor mid-unwind, detached thread, noexcept
  // violation) still produces the structured error record and a typed exit
  // code instead of a bare abort.
  install_terminate_handler(json_errors);
  // Every long-running command drains through g_run on Ctrl-C / SIGTERM and
  // exits with code 6, leaving artifacts (checkpoints, journals) intact.
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  // rc instead of direct returns so the --metrics-json dump below runs on
  // every path, success and typed failure alike.
  int rc = 0;
  std::string metrics_json_path;
  try {
    const auto flags = parse_flags(argc, argv, 2);
    // ConfigError (exit 2) on an unknown action or malformed spec — a typo'd
    // spec that silently never fired would make a robustness run vacuous.
    if (has_flag(flags, "failpoint")) util::Failpoints::arm_specs(flags.at("failpoint"));
    // Armed before dispatch so every phase span of the command lands in the
    // file; sandboxed job children inherit the O_APPEND fd across fork and
    // append to the same file (atomic single-write lines, no interleaving).
    if (has_flag(flags, "trace")) util::trace::open(flags.at("trace"));
    if (has_flag(flags, "metrics-json")) metrics_json_path = flags.at("metrics-json");
    rc = [&]() -> int {
      if (cmd == "characterize") return cmd_characterize(flags);
      if (cmd == "estimate") return cmd_estimate(flags);
      if (cmd == "netlist") return cmd_netlist(flags);
      if (cmd == "mc") return cmd_mc(flags);
      if (cmd == "batch") return cmd_batch(flags);
      if (cmd == "gen-netlist") return cmd_gen_netlist(flags);
      if (cmd == "sweep") return cmd_sweep(flags);
      if (cmd == "liberty") return cmd_liberty(flags);
      if (cmd == "spice") return cmd_spice(flags);
      if (cmd == "corners") return cmd_corners(flags);
      if (cmd == "sensitivity") return cmd_sensitivity(flags);
      usage_exit(("unknown command: " + cmd).c_str());
    }();
  } catch (const Error& e) {
    // Exit-code contract: 1 = internal bug, 2 = usage/config, 3 = parse,
    // 4 = numerical, 5 = io.
    if (json_errors) {
      std::fprintf(stderr, "%s\n", error_json(e).c_str());
    } else {
      std::fprintf(stderr, "error: %s\n", e.message().c_str());
      if (e.code() == ErrorCode::kContract)
        std::fprintf(stderr, "this is a bug in rgleak, not in your input; please report it\n");
    }
    rc = exit_code_for(e.code());
  } catch (const std::bad_alloc&) {
    // An allocation that escaped every charged arena: still a typed exit.
    if (json_errors)
      std::fprintf(stderr, "{\"error\":\"resource\",\"message\":\"allocation failed\"}\n");
    else
      std::fprintf(stderr, "error: allocation failed (out of memory)\n");
    rc = 8;
  } catch (const std::exception& e) {
    if (json_errors)
      std::fprintf(stderr, "%s\n", error_json(e).c_str());
    else
      std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!metrics_json_path.empty()) {
    // Best effort: a failed observability dump must not change the command's
    // exit code (the run itself already succeeded or failed on its own terms).
    try {
      util::atomic_write_file(metrics_json_path, [](std::ostream& os) {
        os << util::metrics::Registry::instance().snapshot_json() << "\n";
      });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: failed to write --metrics-json %s: %s\n",
                   metrics_json_path.c_str(), e.what());
    }
  }
  return rc;
}
