// trace_check — validator for --trace JSONL span files (FORMATS.md,
// trace-span-v1).
//
// Spans are emitted at destruction, so a file lists children BEFORE their
// parents; validation is therefore two-pass: load every record, then resolve
// parent references and check interval containment. All timestamps are
// steady-clock nanoseconds, comparable across the supervisor and its forked
// children (same host, same CLOCK_MONOTONIC epoch), which is what makes the
// cross-process nesting check possible at all.
//
// Checks, in order:
//   * every line parses as a flat JSON object with the required fields;
//   * the crc trailer verifies (same convention as journal records: CRC32 of
//     the record as rendered without the crc field);
//   * span ids are unique;
//   * wall_ns >= 0 and t_ns > 0;
//   * every non-empty parent ref resolves to a span in the file;
//   * a child's [t_ns, t_ns + wall_ns] interval lies within its parent's;
//   * per process, start timestamps are monotone in span-sequence order
//     (with a small slack: the sequence fetch and the clock read in the Span
//     constructor are adjacent but not atomic, so a descheduled thread can
//     publish them slightly out of order).
//
// Exit 0 on pass, 1 on any violation (each reported on stderr), 2 on usage.

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "service/jsonio.h"
#include "util/crc32.h"
#include "util/error.h"

namespace {

using rgleak::service::JsonObject;
using rgleak::service::parse_json_object;

struct SpanRec {
  std::string id;
  std::string parent;
  std::string name;
  std::int64_t t_ns = 0;
  std::int64_t wall_ns = 0;
  std::size_t line = 0;
  long pid = 0;
  std::uint64_t seq = 0;
};

// Clock-vs-sequence publication slack for the per-process monotonicity check
// (see header comment). 100ms is far above any realistic deschedule window
// between two adjacent loads, far below any real clock defect.
constexpr std::int64_t kMonotoneSlackNs = 100'000'000;

bool parse_i64(const std::string& s, std::int64_t& out) {
  const char* b = s.data();
  const char* e = b + s.size();
  const auto [p, ec] = std::from_chars(b, e, out);
  return ec == std::errc() && p == e;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  const char* b = s.data();
  const char* e = b + s.size();
  const auto [p, ec] = std::from_chars(b, e, out);
  return ec == std::errc() && p == e;
}

// Splits "<pid>:<seq>".
bool parse_span_id(const std::string& id, long& pid, std::uint64_t& seq) {
  const auto colon = id.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= id.size()) return false;
  std::int64_t p = 0;
  std::uint64_t q = 0;
  if (!parse_i64(id.substr(0, colon), p) || p <= 0) return false;
  if (!parse_u64(id.substr(colon + 1), q)) return false;
  pid = static_cast<long>(p);
  seq = q;
  return true;
}

int g_errors = 0;
constexpr int kMaxReported = 50;

void fail(std::size_t line, const std::string& msg) {
  if (++g_errors <= kMaxReported)
    std::fprintf(stderr, "trace_check: line %zu: %s\n", line, msg.c_str());
}

// Verifies and strips the crc trailer; journal convention (service/job.cpp):
// the crc is computed over the record as rendered WITHOUT the trailer, i.e.
// base = line minus the 18-char `,"crc":"xxxxxxxx"}` suffix plus `}`.
bool check_crc(const std::string& body, std::size_t line) {
  constexpr std::size_t kCrcSuffixLen = 18;  // ,"crc":"xxxxxxxx"}
  if (body.size() <= kCrcSuffixLen ||
      body.compare(body.size() - kCrcSuffixLen, 8, ",\"crc\":\"") != 0 ||
      body.back() != '}' || body[body.size() - 2] != '"') {
    fail(line, "missing crc trailer");
    return false;
  }
  std::uint32_t want = 0;
  if (!rgleak::util::parse_crc32_hex(body.substr(body.size() - 10, 8), want)) {
    fail(line, "malformed crc trailer");
    return false;
  }
  const std::string base = body.substr(0, body.size() - kCrcSuffixLen) + "}";
  if (rgleak::util::crc32(base) != want) {
    fail(line, "crc mismatch (record corrupt or truncated)");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t min_spans = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--min-spans" && i + 1 < argc) {
      std::uint64_t n = 0;
      if (!parse_u64(argv[++i], n)) {
        std::fprintf(stderr, "trace_check: bad --min-spans value\n");
        return 2;
      }
      min_spans = static_cast<std::size_t>(n);
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: trace_check [--min-spans N] TRACE.jsonl\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: trace_check [--min-spans N] TRACE.jsonl\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_check: cannot open '%s'\n", path.c_str());
    return 1;
  }

  // Pass 1: parse every record, verify self-contained properties.
  std::vector<SpanRec> spans;
  std::map<std::string, std::size_t> by_id;  // span id -> index into spans
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (!check_crc(line, lineno)) continue;
    JsonObject obj;
    try {
      obj = parse_json_object(line, path, lineno);
    } catch (const rgleak::Error& e) {
      fail(lineno, "not a JSON object: " + e.message());
      continue;
    }
    bool complete = true;
    for (const char* key : {"span", "parent", "name", "job", "attempt", "t_ns", "wall_ns",
                            "outcome", "crc"}) {
      if (obj.find(key) == obj.end()) {
        fail(lineno, std::string("missing field \"") + key + "\"");
        complete = false;
      }
    }
    if (!complete) continue;
    SpanRec rec;
    rec.line = lineno;
    rec.id = obj.at("span");
    rec.parent = obj.at("parent");
    rec.name = obj.at("name");
    if (!parse_span_id(rec.id, rec.pid, rec.seq)) {
      fail(lineno, "span id is not \"<pid>:<seq>\": " + rec.id);
      continue;
    }
    if (rec.name.empty()) fail(lineno, "empty span name");
    if (obj.at("outcome").empty()) fail(lineno, "empty outcome");
    if (!parse_i64(obj.at("t_ns"), rec.t_ns) || rec.t_ns <= 0)
      fail(lineno, "bad t_ns: " + obj.at("t_ns"));
    if (!parse_i64(obj.at("wall_ns"), rec.wall_ns) || rec.wall_ns < 0)
      fail(lineno, "bad wall_ns: " + obj.at("wall_ns"));
    const auto [it, inserted] = by_id.emplace(rec.id, spans.size());
    if (!inserted) {
      fail(lineno, "duplicate span id " + rec.id + " (first at line " +
                       std::to_string(spans[it->second].line) + ")");
      continue;
    }
    spans.push_back(std::move(rec));
  }

  // Pass 2: parent resolution and interval containment. Children appear
  // before parents in the file, so this cannot run during pass 1.
  for (const SpanRec& s : spans) {
    if (s.parent.empty()) continue;
    const auto it = by_id.find(s.parent);
    if (it == by_id.end()) {
      fail(s.line, "parent " + s.parent + " of span " + s.id + " not in trace");
      continue;
    }
    const SpanRec& p = spans[it->second];
    if (s.t_ns < p.t_ns || s.t_ns + s.wall_ns > p.t_ns + p.wall_ns)
      fail(s.line, "span " + s.id + " [" + std::to_string(s.t_ns) + ", +" +
                       std::to_string(s.wall_ns) + "] escapes parent " + p.id + " [" +
                       std::to_string(p.t_ns) + ", +" + std::to_string(p.wall_ns) + "]");
  }

  // Pass 3: per-process monotone start timestamps in sequence order.
  std::map<long, std::vector<const SpanRec*>> by_pid;
  for (const SpanRec& s : spans) by_pid[s.pid].push_back(&s);
  for (auto& [pid, list] : by_pid) {
    std::sort(list.begin(), list.end(),
              [](const SpanRec* a, const SpanRec* b) { return a->seq < b->seq; });
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i]->t_ns + kMonotoneSlackNs < list[i - 1]->t_ns)
        fail(list[i]->line, "span " + list[i]->id + " starts before predecessor " +
                                list[i - 1]->id + " of the same process");
    }
  }

  if (spans.size() < min_spans) {
    std::fprintf(stderr, "trace_check: %zu spans, expected at least %zu\n", spans.size(),
                 min_spans);
    ++g_errors;
  }

  if (g_errors > 0) {
    if (g_errors > kMaxReported)
      std::fprintf(stderr, "trace_check: ... and %d more errors\n", g_errors - kMaxReported);
    std::fprintf(stderr, "trace_check: FAIL: %zu spans, %d errors\n", spans.size(), g_errors);
    return 1;
  }
  std::printf("trace_check: ok: %zu spans\n", spans.size());
  return 0;
}
