// Library characterization workflow: characterize the virtual 90 nm library
// both ways (Monte-Carlo and analytical fit + exact MGF moments), dump a
// per-cell summary, and show the fitted (a,b,c) triplets the analytical
// correlation mapping uses.

#include <cstdio>
#include <iostream>

#include "cells/library.h"
#include "charlib/characterize.h"
#include "process/variation.h"
#include "util/table.h"

using namespace rgleak;

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::string(argv[1]) == "--full";

  const cells::StdCellLibrary library = cells::build_virtual90_library();
  const process::ProcessVariation process = process::default_process();

  charlib::McCharOptions mc_opts;
  mc_opts.samples = 20000;
  const charlib::CharacterizedLibrary mc =
      charlib::characterize_monte_carlo(library, process, mc_opts);
  const charlib::CharacterizedLibrary fit = charlib::characterize_analytic(library, process);

  std::printf("virtual 90 nm library: %zu cells, process L = %.1f +/- %.2f nm\n\n",
              library.size(), process.length().mean_nm, process.length().sigma_total_nm());

  util::Table t({"cell", "inputs", "devices", "worst-state mean (nA)", "state spread x",
                 "MC mean (nA)", "fit mean (nA)", "a (nA)", "b (1/nm)", "c (1/nm^2)"});
  const std::size_t limit = full ? library.size() : 12;
  for (std::size_t ci = 0; ci < limit; ++ci) {
    const cells::Cell& cell = library.cell(ci);
    const auto& states = fit.cell(ci).states;
    double lo = 1e300, hi = 0.0;
    std::size_t worst = 0;
    for (std::size_t s = 0; s < states.size(); ++s) {
      lo = std::min(lo, states[s].mean_na);
      if (states[s].mean_na > hi) {
        hi = states[s].mean_na;
        worst = s;
      }
    }
    const auto& model = *states[worst].model;
    t.row()
        .cell(cell.name())
        .cell(static_cast<long long>(cell.num_inputs()))
        .cell(static_cast<long long>(cell.num_devices()))
        .cell(hi, 4)
        .cell(hi / lo, 3)
        .cell(mc.cell(ci).states[worst].mean_na, 4)
        .cell(states[worst].mean_na, 4)
        .cell(model.a, 4)
        .cell(model.b, 4)
        .cell(model.c, 3);
  }
  t.print(std::cout);
  if (!full)
    std::printf("\n(first %zu cells shown; run with --full for all %zu)\n", limit,
                library.size());
  std::printf(
      "\nThe (a,b,c) triplet is the Rao-style fit I(L) = a exp(bL + cL^2); the exact\n"
      "mean/sigma follow from the non-central chi-square MGF (eqs 1-5 of the paper).\n");
  return 0;
}
