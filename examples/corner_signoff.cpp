// Multi-corner leakage sign-off: the table a power lead reads before
// committing a leakage budget. Sweeps {SS, TT, FF} x {25C, 110C} through the
// whole chain — device model re-targeted per corner, library
// re-characterized, RG estimate — and reports the worst-corner mean+3sigma.

#include <cstdio>

#include "cells/library.h"
#include "core/corner_analysis.h"
#include "core/yield.h"
#include "process/variation.h"
#include "util/table.h"

#include <iostream>

using namespace rgleak;

int main() {
  const cells::StdCellLibrary library = cells::build_virtual90_library();
  const process::ProcessVariation process = process::default_process();

  netlist::UsageHistogram usage;
  usage.alphas.assign(library.size(), 0.0);
  usage.alphas[library.index_of("NAND2_X1")] = 0.3;
  usage.alphas[library.index_of("NOR2_X1")] = 0.15;
  usage.alphas[library.index_of("INV_X1")] = 0.25;
  usage.alphas[library.index_of("DFF_X1")] = 0.2;
  usage.alphas[library.index_of("AOI21_X1")] = 0.1;

  const std::size_t gates = 100000;
  // Corner shift: one D2D sigma of systematic L.
  const auto corners = core::standard_corners(process.length().sigma_d2d_nm);
  const auto results = core::analyze_corners(library.tech(), process, usage, gates, corners);

  std::printf("corner sign-off: %zu gates, default 90 nm process\n\n", gates);
  util::Table t({"corner", "dL (nm)", "T (C)", "mean (mA)", "sigma (mA)",
                 "mean+3sigma (mA)", "P99 (mA)"});
  for (const auto& r : results) {
    const core::LeakageYieldModel yield(r.estimate);
    t.row()
        .cell(r.corner.name)
        .cell(r.corner.delta_l_nm, 3)
        .cell(r.corner.temperature_c, 4)
        .cell(r.estimate.mean_na * 1e-6, 4)
        .cell(r.estimate.sigma_na * 1e-6, 4)
        .cell((r.estimate.mean_na + 3 * r.estimate.sigma_na) * 1e-6, 4)
        .cell(yield.quantile(0.99) * 1e-6, 4);
  }
  t.print(std::cout);

  const auto& worst = core::worst_corner(results);
  std::printf("\nsign-off corner: %s — budget %.3f mA (mean+3sigma)\n",
              worst.corner.name.c_str(),
              (worst.estimate.mean_na + 3 * worst.estimate.sigma_na) * 1e-6);
  return 0;
}
