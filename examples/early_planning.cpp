// Early-mode design planning: none of these designs exist yet — every input
// is an *expected* value (gate-count targets, candidate die sizes, rough cell
// mixes from previous projects). The constant-time estimator turns the whole
// exploration grid into a leakage budget table in milliseconds.

#include <cstdio>
#include <iostream>

#include "cells/library.h"
#include "charlib/characterize.h"
#include "core/leakage_estimator.h"
#include "process/variation.h"
#include "util/table.h"

using namespace rgleak;

namespace {

netlist::UsageHistogram mix(const cells::StdCellLibrary& lib,
                            const std::vector<std::pair<std::string, double>>& m) {
  netlist::UsageHistogram u;
  u.alphas.assign(lib.size(), 0.0);
  for (const auto& [name, a] : m) u.alphas[lib.index_of(name)] = a;
  return u;
}

}  // namespace

int main() {
  const cells::StdCellLibrary library = cells::build_virtual90_library();
  const process::ProcessVariation process = process::default_process();
  const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(library, process);

  // Conservative configuration: maximize over signal probability, include the
  // random-Vt mean correction, constant-time method.
  core::EstimatorConfig cfg;
  cfg.method = core::EstimationMethod::kIntegralRect;
  const core::LeakageEstimator estimator(chars, cfg);

  // Candidate architectures from the planning meeting.
  const std::vector<std::pair<std::string, netlist::UsageHistogram>> mixes = {
      {"control-heavy", mix(library, {{"NAND2_X1", 0.3},
                                      {"NOR2_X1", 0.2},
                                      {"INV_X1", 0.25},
                                      {"AOI21_X1", 0.1},
                                      {"DFF_X1", 0.15}})},
      {"datapath-heavy", mix(library, {{"FA_X1", 0.25},
                                       {"XOR2_X1", 0.15},
                                       {"MUX2_X1", 0.15},
                                       {"DFF_X1", 0.2},
                                       {"BUF_X2", 0.1},
                                       {"INV_X2", 0.15}})},
  };

  util::Table t({"mix", "gates", "die (mm)", "mean (mA)", "sigma (mA)", "sigma/mean %",
                 "mean+3sigma (mA)"});
  for (const auto& [name, usage] : mixes) {
    for (const std::size_t gates : {200000u, 500000u, 1000000u}) {
      for (const double die_mm : {1.0, 1.5}) {
        core::DesignCharacteristics d;
        d.usage = usage;
        d.gate_count = gates;
        d.width_nm = d.height_nm = die_mm * 1e6;
        const core::LeakageEstimate e = estimator.estimate(d);
        t.row()
            .cell(name)
            .cell(static_cast<long long>(gates))
            .cell(die_mm, 3)
            .cell(e.mean_na * 1e-6, 4)
            .cell(e.sigma_na * 1e-6, 4)
            .cell(100.0 * e.cv(), 3)
            .cell((e.mean_na + 3.0 * e.sigma_na) * 1e-6, 4);
      }
    }
  }
  std::printf("Early-mode leakage budgets (no netlist, expected characteristics only):\n\n");
  t.print(std::cout);
  std::printf(
      "\nUse the mean+3sigma column for sign-off-style budgeting: the same gate count\n"
      "on a larger die has lower sigma because within-die correlation decays.\n");
  return 0;
}
