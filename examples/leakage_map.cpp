// Regional leakage budgeting: partition the die into tiles and compute, for
// every tile, its leakage statistics and its correlation with the other
// tiles — the inputs a power-delivery team needs to budget per-region
// current. Everything is exact (the eq.-(17) transformation generalizes to
// rectangle pairs) and needs only the high-level design characteristics.

#include <cstdio>
#include <string>

#include "cells/library.h"
#include "charlib/characterize.h"
#include "core/region_analysis.h"
#include "core/yield.h"
#include "process/variation.h"

using namespace rgleak;

int main() {
  const cells::StdCellLibrary library = cells::build_virtual90_library();

  process::LengthVariation len;
  len.mean_nm = 40.0;
  len.sigma_d2d_nm = len.sigma_wid_nm = 2.5 / std::sqrt(2.0);
  const process::ProcessVariation process(
      len, process::VtVariation{}, std::make_shared<process::ExponentialCorrelation>(1.0e5));
  const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(library, process);

  netlist::UsageHistogram usage;
  usage.alphas.assign(library.size(), 0.0);
  usage.alphas[library.index_of("NAND2_X1")] = 0.35;
  usage.alphas[library.index_of("INV_X1")] = 0.3;
  usage.alphas[library.index_of("NOR2_X1")] = 0.15;
  usage.alphas[library.index_of("DFF_X1")] = 0.2;

  const core::RandomGate rg(chars, usage, 0.5, core::CorrelationMode::kAnalytic);

  // 90k gates on a 450 x 450 um die, partitioned 6 x 6.
  placement::Floorplan fp;
  fp.rows = fp.cols = 300;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  const std::size_t tiles = 6;
  const core::RegionAnalysis region(&rg, fp, tiles, tiles);

  const core::LeakageEstimate tile = region.tile_estimate();
  std::printf("die: %zu gates on %.0f x %.0f um, %zux%zu tiles of %zu gates\n\n",
              fp.num_sites(), fp.width_nm() * 1e-3, fp.height_nm() * 1e-3, tiles, tiles,
              region.tile_sites());
  std::printf("per-tile leakage: mean %.2f uA, sigma %.2f uA (%.1f%%)\n",
              tile.mean_na * 1e-3, tile.sigma_na * 1e-3, 100.0 * tile.cv());

  const core::LeakageYieldModel tile_yield(tile);
  const double tile_budget = tile.mean_na * 1.5;
  std::printf("P(tile > 1.5x nominal budget) = %.3f%%\n\n",
              100.0 * (1.0 - tile_yield.yield(tile_budget)));

  std::printf("tile-total correlation vs tile (0,0):\n");
  for (std::size_t ty = 0; ty < tiles; ++ty) {
    std::printf("  ");
    for (std::size_t tx = 0; tx < tiles; ++tx)
      std::printf("%6.3f ", region.tile_correlation(0, 0, tx, ty));
    std::printf("\n");
  }

  const core::LeakageEstimate chip = region.chip_estimate();
  std::printf("\nchip total reassembled from tiles: mean %.2f uA, sigma %.2f uA\n",
              chip.mean_na * 1e-3, chip.sigma_na * 1e-3);
  std::printf(
      "note the high inter-tile correlation: regional budgets cannot be set\n"
      "independently — worst-case tiles co-occur on slow-corner dies.\n");
  return 0;
}
