// Late-mode sign-off: a placed netlist exists (here, the c7552 ISCAS85
// benchmark). Extract the high-level characteristics, run the constant-time
// RG estimate, and cross-check it against the exact O(n^2) pairwise analysis
// and a full-chip Monte-Carlo simulation of the placed design.

#include <cstdio>

#include "cells/library.h"
#include "charlib/characterize.h"
#include "core/estimators.h"
#include "core/leakage_estimator.h"
#include "mc/full_chip_mc.h"
#include "netlist/iscas85.h"
#include "netlist/random_circuit.h"
#include "process/variation.h"

using namespace rgleak;

int main() {
  const cells::StdCellLibrary library = cells::build_virtual90_library();

  // Use a 0.1 mm correlation length so the benchmark die spans some decay.
  process::LengthVariation len;
  len.mean_nm = 40.0;
  len.sigma_d2d_nm = len.sigma_wid_nm = 2.5 / std::sqrt(2.0);
  const process::ProcessVariation process(
      len, process::VtVariation{}, std::make_shared<process::ExponentialCorrelation>(1.0e5));
  const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(library, process);

  // "Tape-out" netlist: c7552 placed row-major on a square grid (padded to
  // fill the grid, as the RG array is k x m).
  math::Rng rng(7552);
  const netlist::Netlist seed =
      netlist::make_iscas85(netlist::iscas85_descriptors().back(), library, rng);
  const placement::Floorplan fp = placement::Floorplan::for_gate_count(seed.size());
  const netlist::Netlist nl = netlist::generate_random_circuit(
      library, netlist::extract_usage(seed), fp.num_sites(), rng,
      netlist::UsageMatch::kExact, seed.name());
  const placement::Placement pl(&nl, fp);

  const double p = 0.5;

  // 1. Late-mode RG estimate from the extracted characteristics.
  const netlist::UsageHistogram usage = netlist::extract_usage(nl);
  const core::RandomGate rg(chars, usage, p, core::CorrelationMode::kAnalytic);
  const core::LeakageEstimate rg_est = core::estimate_linear(rg, fp);

  // 2. Exact O(n^2) pairwise analysis of the placed design.
  const core::ExactEstimator exact(chars, p, core::CorrelationMode::kAnalytic);
  const core::LeakageEstimate truth = exact.estimate(pl);

  // 3. Full-chip Monte Carlo (process-space sampling of the placed design).
  mc::FullChipMcOptions opts;
  opts.trials = 2000;
  opts.signal_probability = p;
  opts.resample_states_per_trial = true;
  mc::FullChipMonteCarlo sim(pl, chars, opts);
  const mc::FullChipMcResult mc_res = sim.run();

  std::printf("late-mode sign-off for %s: %zu gates, %.0f x %.0f um die\n\n",
              nl.name().c_str(), nl.size(), fp.width_nm() * 1e-3, fp.height_nm() * 1e-3);
  std::printf("%-28s %12s %12s\n", "method", "mean (uA)", "sigma (uA)");
  std::printf("%-28s %12.3f %12.3f\n", "RG estimate (O(n), eq.17)", rg_est.mean_na * 1e-3,
              rg_est.sigma_na * 1e-3);
  std::printf("%-28s %12.3f %12.3f\n", "exact pairwise (O(n^2))", truth.mean_na * 1e-3,
              truth.sigma_na * 1e-3);
  std::printf("%-28s %12.3f %12.3f   (%zu trials)\n", "full-chip Monte Carlo",
              mc_res.mean_na * 1e-3, mc_res.sigma_na * 1e-3, mc_res.trials);
  std::printf("\nsigma error, RG vs exact : %.3f%%\n",
              100.0 * std::abs(rg_est.sigma_na - truth.sigma_na) / truth.sigma_na);
  std::printf("(the MC sigma itself carries a few %% sampling error at %zu trials —\n"
              " the total-leakage distribution is heavily right-skewed)\n",
              mc_res.trials);
  return 0;
}
