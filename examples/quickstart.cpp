// Quickstart: estimate the full-chip leakage statistics of a candidate design
// in a few lines.
//
//  1. Build the virtual 90 nm cell library.
//  2. Describe the process (L/Vt variation + WID spatial correlation).
//  3. Characterize the library analytically (fit + exact moments).
//  4. Describe the design by its high-level characteristics.
//  5. Estimate: mean and sigma of total leakage, in constant time.

#include <cstdio>

#include "cells/library.h"
#include "charlib/characterize.h"
#include "core/leakage_estimator.h"
#include "process/variation.h"

int main() {
  using namespace rgleak;

  // 1. Cell library (62 cells; see cells/library.h).
  const cells::StdCellLibrary library = cells::build_virtual90_library();

  // 2. Process: defaults are L = 40 +/- 2.5 nm (D2D/WID split evenly),
  //    exponential WID correlation with 0.5 mm correlation length.
  const process::ProcessVariation process = process::default_process();

  // 3. Characterization: per cell, per input state, fit I(L) = a e^{bL+cL^2}
  //    and compute exact moments through the non-central chi-square MGF.
  const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(library, process);

  // 4. High-level design characteristics (early mode: all of these are
  //    *expected* values, no netlist needed).
  core::DesignCharacteristics design;
  design.usage.alphas.assign(library.size(), 0.0);
  design.usage.alphas[library.index_of("INV_X1")] = 0.25;
  design.usage.alphas[library.index_of("NAND2_X1")] = 0.35;
  design.usage.alphas[library.index_of("NOR2_X1")] = 0.20;
  design.usage.alphas[library.index_of("DFF_X1")] = 0.15;
  design.usage.alphas[library.index_of("XOR2_X1")] = 0.05;
  design.gate_count = 250000;
  design.width_nm = 8.0e5;   // 0.8 mm
  design.height_nm = 8.0e5;

  // 5. Estimate.
  const core::LeakageEstimator estimator(chars);
  const core::LeakageEstimate est = estimator.estimate(design);

  std::printf("design: %zu gates on %.2f x %.2f mm\n", design.gate_count,
              design.width_nm * 1e-6, design.height_nm * 1e-6);
  std::printf("total leakage mean  : %.3f uA\n", est.mean_na * 1e-3);
  std::printf("total leakage sigma : %.3f uA  (%.2f%% of mean)\n", est.sigma_na * 1e-3,
              100.0 * est.cv());
  return 0;
}
