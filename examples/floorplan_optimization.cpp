// Variance-aware floorplanning: the chip-total mean doesn't care where
// blocks sit, but the sigma does — cross-block covariances decay with
// separation. The annealer searches block-to-slot assignments for the
// minimum-sigma layout using exact covariance evaluations (no Monte Carlo in
// the loop).

#include <cstdio>

#include "cells/library.h"
#include "charlib/characterize.h"
#include "core/floorplan_optimizer.h"
#include "core/yield.h"
#include "process/variation.h"

using namespace rgleak;

namespace {

netlist::UsageHistogram mix(const cells::StdCellLibrary& lib,
                            const std::vector<std::pair<std::string, double>>& m) {
  netlist::UsageHistogram u;
  u.alphas.assign(lib.size(), 0.0);
  double total = 0.0;
  for (const auto& [n, a] : m) total += a;
  for (const auto& [n, a] : m) u.alphas[lib.index_of(n)] = a / total;
  return u;
}

core::BlockSpec block(std::string name, netlist::UsageHistogram usage, std::size_t c0,
                      std::size_t r0, std::size_t side) {
  core::BlockSpec b;
  b.name = std::move(name);
  b.usage = std::move(usage);
  b.col0 = c0;
  b.row0 = r0;
  b.cols = b.rows = side;
  return b;
}

}  // namespace

int main() {
  const cells::StdCellLibrary lib = cells::build_virtual90_library();
  // Mostly-WID process with a short correlation length: separation matters.
  process::LengthVariation len;
  len.mean_nm = 40.0;
  len.sigma_d2d_nm = 0.8;
  len.sigma_wid_nm = 2.37;
  const process::ProcessVariation process(
      len, process::VtVariation{}, std::make_shared<process::ExponentialCorrelation>(6.0e4));
  const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(lib, process);

  // Eight 60x60-site blocks on a 240x120 grid (slots in a 4x2 arrangement):
  // two leaky SRAM-ish blocks, two hot datapaths, four quiet control blocks.
  placement::Floorplan fp;
  fp.cols = 240;
  fp.rows = 120;
  fp.site_w_nm = fp.site_h_nm = 1500.0;
  const auto sram = mix(lib, {{"SRAM6T", 9.0}, {"INV_X2", 1.0}});
  const auto dp = mix(lib, {{"FA_X1", 2.0}, {"XOR2_X1", 1.0}, {"MUX2_X1", 1.0},
                            {"INV_X4", 1.0}});
  const auto ctl = mix(lib, {{"NAND3_X1", 2.0}, {"NAND2_X1", 1.0}, {"INV_X1", 1.0},
                             {"DFF_X1", 1.0}});

  std::vector<core::BlockSpec> blocks;
  const char* names[8] = {"sram0", "sram1", "dp0", "dp1", "ctl0", "ctl1", "ctl2", "ctl3"};
  const netlist::UsageHistogram* mixes[8] = {&sram, &sram, &dp, &dp, &ctl, &ctl, &ctl, &ctl};
  for (int i = 0; i < 8; ++i)
    blocks.push_back(block(names[i], *mixes[i], static_cast<std::size_t>(i % 4) * 60,
                           static_cast<std::size_t>(i / 4) * 60, 60));

  core::MultiBlockEstimator mb(chars, fp, blocks);
  std::printf("initial layout (hot blocks adjacent):\n");
  for (std::size_t b = 0; b < mb.num_blocks(); ++b)
    std::printf("  %-6s at slot (%zu, %zu)\n", mb.block(b).name.c_str(),
                mb.block(b).col0 / 60, mb.block(b).row0 / 60);

  core::FloorplanOptimizerOptions opts;
  opts.iterations = 1500;
  const core::FloorplanOptimizerResult r = core::optimize_floorplan(mb, opts);

  std::printf("\noptimized layout:\n");
  for (std::size_t b = 0; b < mb.num_blocks(); ++b)
    std::printf("  %-6s at slot (%zu, %zu)\n", mb.block(b).name.c_str(),
                mb.block(b).col0 / 60, mb.block(b).row0 / 60);

  const auto chip = mb.chip_estimate();
  std::printf("\nchip sigma: %.3f -> %.3f uA (%.2f%% reduction, %zu accepted moves)\n",
              r.initial_sigma_na * 1e-3, r.final_sigma_na * 1e-3,
              100.0 * (r.initial_sigma_na - r.final_sigma_na) / r.initial_sigma_na,
              r.accepted_moves);
  const core::LeakageYieldModel before({chip.mean_na, r.initial_sigma_na});
  const core::LeakageYieldModel after(chip);
  std::printf("P99 budget:  %.3f -> %.3f uA\n", before.quantile(0.99) * 1e-3,
              after.quantile(0.99) * 1e-3);
  return 0;
}
