// Block-level floorplan planning: a chip assembled from IP blocks with
// different cell mixes (a CPU core, an SRAM array, a datapath unit, an I/O
// ring strip). Each block gets its own Random Gate; the estimator combines
// within-block statistics with exact cross-block covariances to give both
// per-block budgets and the chip total, early in the flow.

#include <cstdio>

#include "cells/library.h"
#include "charlib/characterize.h"
#include "core/multi_block.h"
#include "core/yield.h"
#include "process/variation.h"

using namespace rgleak;

namespace {

netlist::UsageHistogram mix(const cells::StdCellLibrary& lib,
                            const std::vector<std::pair<std::string, double>>& m) {
  netlist::UsageHistogram u;
  u.alphas.assign(lib.size(), 0.0);
  double total = 0.0;
  for (const auto& [name, a] : m) total += a;
  for (const auto& [name, a] : m) u.alphas[lib.index_of(name)] = a / total;
  return u;
}

core::BlockSpec block(std::string name, netlist::UsageHistogram usage, std::size_t c0,
                      std::size_t r0, std::size_t cols, std::size_t rows) {
  core::BlockSpec b;
  b.name = std::move(name);
  b.usage = std::move(usage);
  b.col0 = c0;
  b.row0 = r0;
  b.cols = cols;
  b.rows = rows;
  return b;
}

}  // namespace

int main() {
  const cells::StdCellLibrary lib = cells::build_virtual90_library();
  process::LengthVariation len;
  len.mean_nm = 40.0;
  len.sigma_d2d_nm = len.sigma_wid_nm = 2.5 / std::sqrt(2.0);
  const process::ProcessVariation process(
      len, process::VtVariation{}, std::make_shared<process::ExponentialCorrelation>(1.5e5));
  const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(lib, process);

  // 400 x 400 site grid (0.6 x 0.6 mm at 1.5 um pitch).
  placement::Floorplan fp;
  fp.rows = fp.cols = 400;
  fp.site_w_nm = fp.site_h_nm = 1500.0;

  std::vector<core::BlockSpec> blocks = {
      block("cpu_core",
            mix(lib, {{"NAND2_X1", 3}, {"NOR2_X1", 2}, {"INV_X1", 3}, {"AOI21_X1", 1},
                      {"DFF_X1", 2}}),
            0, 0, 240, 240),
      block("sram_array", mix(lib, {{"SRAM6T", 9}, {"INV_X2", 1}}), 240, 0, 160, 240),
      block("datapath",
            mix(lib, {{"FA_X1", 3}, {"XOR2_X1", 2}, {"MUX2_X1", 2}, {"DFF_X1", 2},
                      {"BUF_X2", 1}}),
            0, 240, 240, 160),
      block("io_strip", mix(lib, {{"TBUF_X2", 1}, {"BUF_X4", 1}, {"INV_X8", 1}}), 240, 240,
            160, 160),
  };

  const core::MultiBlockEstimator mb(chars, fp, blocks);

  std::printf("floorplan: %.2f x %.2f mm, %zu blocks\n\n", fp.width_nm() * 1e-6,
              fp.height_nm() * 1e-6, mb.num_blocks());
  std::printf("%-12s %10s %12s %12s %10s %14s\n", "block", "gates", "mean (uA)",
              "sigma (uA)", "sigma/mu", "P99 (uA)");
  for (std::size_t b = 0; b < mb.num_blocks(); ++b) {
    const core::LeakageEstimate e = mb.block_estimate(b);
    const core::LeakageYieldModel yield(e);
    std::printf("%-12s %10zu %12.2f %12.2f %9.1f%% %14.2f\n", mb.block(b).name.c_str(),
                mb.block(b).num_sites(), e.mean_na * 1e-3, e.sigma_na * 1e-3,
                100.0 * e.cv(), yield.quantile(0.99) * 1e-3);
  }

  std::printf("\nblock correlation matrix:\n%-12s", "");
  for (std::size_t b = 0; b < mb.num_blocks(); ++b)
    std::printf(" %10s", mb.block(b).name.substr(0, 10).c_str());
  std::printf("\n");
  for (std::size_t a = 0; a < mb.num_blocks(); ++a) {
    std::printf("%-12s", mb.block(a).name.c_str());
    for (std::size_t b = 0; b < mb.num_blocks(); ++b)
      std::printf(" %10.3f", mb.block_correlation(a, b));
    std::printf("\n");
  }

  const core::LeakageEstimate chip = mb.chip_estimate();
  const core::LeakageYieldModel chip_yield(chip);
  std::printf("\nchip total: mean %.2f uA, sigma %.2f uA, P99 %.2f uA\n", chip.mean_na * 1e-3,
              chip.sigma_na * 1e-3, chip_yield.quantile(0.99) * 1e-3);
  const double naive = [&] {
    double s = 0.0;
    for (std::size_t b = 0; b < mb.num_blocks(); ++b) {
      const auto e = mb.block_estimate(b);
      s += core::LeakageYieldModel(e).quantile(0.99);
    }
    return s;
  }();
  std::printf(
      "sum of per-block P99s: %.2f uA — budgeting blocks independently overshoots,\n"
      "but ignoring the strong cross-block correlation would undershoot; the block\n"
      "covariance matrix is what a correct chip budget needs.\n",
      naive * 1e-3);
  return 0;
}
