// The full netlist-centric flow: generate a connected (DAG) netlist,
// propagate signal probabilities through it, estimate leakage with per-gate
// state distributions, compare against the paper's global-p treatment, and
// export the artifacts (.rgnl netlist, .rgchar characterization, .lib
// Liberty view) for downstream tools.

#include <cstdio>

#include "cells/library.h"
#include "charlib/characterize.h"
#include "charlib/io.h"
#include "charlib/liberty_writer.h"
#include "core/connectivity_estimator.h"
#include "core/estimators.h"
#include "core/signal_probability.h"
#include "netlist/connectivity.h"
#include "netlist/io.h"
#include "process/variation.h"

using namespace rgleak;

int main() {
  const cells::StdCellLibrary library = cells::build_virtual90_library();
  process::LengthVariation len;
  len.mean_nm = 40.0;
  len.sigma_d2d_nm = len.sigma_wid_nm = 2.5 / std::sqrt(2.0);
  const process::ProcessVariation process(
      len, process::VtVariation{}, std::make_shared<process::ExponentialCorrelation>(1.0e5));
  const charlib::CharacterizedLibrary chars = charlib::characterize_analytic(library, process);

  // A 4096-gate random DAG with 64 primary inputs.
  netlist::UsageHistogram usage;
  usage.alphas.assign(library.size(), 0.0);
  usage.alphas[library.index_of("NAND2_X1")] = 0.3;
  usage.alphas[library.index_of("NOR2_X1")] = 0.2;
  usage.alphas[library.index_of("INV_X1")] = 0.2;
  usage.alphas[library.index_of("XOR2_X1")] = 0.15;
  usage.alphas[library.index_of("AOI21_X1")] = 0.15;
  math::Rng rng(2007);
  const netlist::ConnectedNetlist nl =
      netlist::generate_random_dag(library, usage, 4096, 64, rng, "demo-dag");

  placement::Floorplan fp;
  fp.rows = fp.cols = 64;
  fp.site_w_nm = fp.site_h_nm = 1500.0;

  // Propagated signal probabilities.
  const auto net_probs = netlist::propagate_probabilities(nl, 0.5);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  for (std::size_t net = nl.num_primary_inputs(); net < nl.num_nets(); ++net) {
    lo = std::min(lo, net_probs[net]);
    hi = std::max(hi, net_probs[net]);
    sum += net_probs[net];
  }
  std::printf("propagated net probabilities: min %.3f, mean %.3f, max %.3f\n", lo,
              sum / static_cast<double>(nl.size()), hi);

  // Connectivity-aware vs global-p estimates.
  const core::ConnectivityAwareEstimator aware(chars, core::CorrelationMode::kAnalytic);
  const core::LeakageEstimate e_aware = aware.estimate(nl, fp, 0.5);
  const netlist::Netlist flat = nl.flatten();
  const placement::Placement pl(&flat, fp);
  const core::ExactEstimator global(chars, 0.5, core::CorrelationMode::kAnalytic);
  const core::LeakageEstimate e_global = global.estimate(pl);

  std::printf("\n%-34s %12s %12s\n", "method", "mean (uA)", "sigma (uA)");
  std::printf("%-34s %12.3f %12.3f\n", "global p = 0.5 (paper, sec 2.1.4)",
              e_global.mean_na * 1e-3, e_global.sigma_na * 1e-3);
  std::printf("%-34s %12.3f %12.3f\n", "propagated per-gate probabilities",
              e_aware.mean_na * 1e-3, e_aware.sigma_na * 1e-3);
  std::printf("global-p mean error: %.2f%%\n",
              100.0 * (e_global.mean_na - e_aware.mean_na) / e_aware.mean_na);

  // Artifacts for downstream tools.
  netlist::save_netlist(flat, "demo-dag.rgnl");
  charlib::save_characterization(chars, "virtual90.rgchar");
  charlib::write_liberty(chars, "virtual90_leakage.lib");
  std::printf("\nwrote demo-dag.rgnl, virtual90.rgchar, virtual90_leakage.lib\n");
  return 0;
}
